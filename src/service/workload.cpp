#include "service/workload.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "spice/analysis.h"
#include "spice/netlist_parser.h"
#include "util/error.h"
#include "variability/pelgrom.h"
#include "variability/sampler.h"

namespace relsim::service {

namespace {

/// Per-sample Pelgrom application in circuit.mosfets() order — the same
/// draw discipline as ReliabilitySimulator::apply_process_variation, and
/// the same order the batched lanes below consume, so the two paths see
/// identical mismatch for sample i.
void apply_variation(spice::Circuit& circuit, const PelgromModel& pelgrom,
                     Xoshiro256& rng) {
  for (spice::Mosfet* m : circuit.mosfets()) {
    const MismatchSampler sampler(pelgrom, m->params().w_um,
                                  m->params().l_um);
    const MismatchSample sample = sampler.sample_single(rng);
    m->set_variation({sample.dvt, sample.dbeta_rel});
  }
}

struct ParsedJob {
  std::unique_ptr<spice::Circuit> circuit;
  const TechNode* tech = nullptr;
};

ParsedJob parse_job_netlist(const JobSpec& spec) {
  spice::ParsedNetlist parsed = spice::parse_netlist(spec.netlist);
  ParsedJob out;
  out.circuit = std::move(parsed.circuit);
  out.tech = parsed.tech != nullptr ? parsed.tech : &tech_65nm();
  return out;
}

McResult run_synthetic(const JobSpec& spec, McRequest req) {
  const double p = spec.pass_prob;
  const McSession session(std::move(req));
  return session.run_yield(
      [p](Xoshiro256& rng, std::size_t) { return rng.uniform01() < p; });
}

McResult run_dc_yield(const JobSpec& spec, CompiledCircuitCache* cache,
                      McRequest req) {
  RELSIM_REQUIRE(!spec.netlist.empty(), "dc_yield job needs a netlist");
  RELSIM_REQUIRE(!spec.constraints.empty(),
                 "dc_yield job needs at least one node constraint");

  const bool batched = req.eval_mode != McEvalMode::kPerSample;

  if (!batched) {
    // Classic build-vary-solve per sample: parse cost every sample, kept
    // for eval-mode parity checks and netlists the compiler rejects.
    const ParsedJob probe = parse_job_netlist(spec);
    const PelgromModel pelgrom(PelgromParams::from_tech(*probe.tech));
    const std::vector<NodeConstraint>& constraints = spec.constraints;
    const McSession session(std::move(req));
    return session.run_yield([&](Xoshiro256& rng, std::size_t) {
      ParsedJob sample = parse_job_netlist(spec);
      apply_variation(*sample.circuit, pelgrom, rng);
      const spice::DcResult r = spice::dc_operating_point(*sample.circuit);
      return constraints_pass(*sample.circuit, r.x(), constraints);
    });
  }

  // Batched path: compiled structure from the cache (daemon) or compiled
  // privately (direct run) — identical numerics either way.
  CompiledCircuitCache::Entry entry;
  if (cache != nullptr) {
    entry = cache->get(spec.netlist);
  } else {
    ParsedJob parsed = parse_job_netlist(spec);
    entry.tech = parsed.tech;
    entry.key = CompiledCircuitCache::key_of(spec.netlist);
    entry.compiled = std::make_shared<const spice::CompiledCircuit>(
        std::move(parsed.circuit));
  }
  const spice::CompiledCircuit& compiled = *entry.compiled;
  const PelgromModel pelgrom(PelgromParams::from_tech(*entry.tech));

  // Per-MOSFET samplers hoisted once, in mosfets() order (see
  // apply_variation). Enumerated from a fresh parse: mosfets() is a
  // non-const accessor and the compiled template circuit is shared.
  std::vector<MismatchSampler> samplers;
  {
    const ParsedJob probe = parse_job_netlist(spec);
    for (spice::Mosfet* m : probe.circuit->mosfets()) {
      samplers.emplace_back(pelgrom, m->params().w_um, m->params().l_um);
    }
  }

  const std::size_t worker_count = std::min<std::size_t>(
      resolve_threads(req.threads, req.thread_budget),
      std::max<std::size_t>(req.n, 1));
  std::vector<std::unique_ptr<spice::CompiledCircuit::Workspace>> workspaces;
  workspaces.reserve(worker_count);
  for (std::size_t w = 0; w < worker_count; ++w) {
    workspaces.push_back(
        compiled.make_workspace(parse_job_netlist(spec).circuit));
  }

  const std::uint64_t seed = req.seed;
  const std::vector<NodeConstraint>& constraints = spec.constraints;
  const McBatchEval batch = [&](const McBatchSpan& span) {
    auto& ws = *workspaces[span.worker];
    for (std::size_t lo = span.lo; lo < span.hi;) {
      const std::size_t lanes = std::min(ws.max_lanes(), span.hi - lo);
      for (std::size_t lane = 0; lane < lanes; ++lane) {
        Xoshiro256 rng(derive_seed(seed, {lo + lane}));
        for (std::size_t m = 0; m < samplers.size(); ++m) {
          const MismatchSample s = samplers[m].sample_single(rng);
          ws.set_lane_variation(lane, m, {s.dvt, s.dbeta_rel});
        }
      }
      ws.solve_dc(lanes);
      for (std::size_t lane = 0; lane < lanes; ++lane) {
        span.values[lo - span.lo + lane] =
            constraints_pass(ws.circuit(), ws.lane_solution(lane),
                             constraints)
                ? 1.0
                : 0.0;
      }
      lo += lanes;
    }
  };
  const McPredicate scalar = [&](Xoshiro256& rng, std::size_t) {
    ParsedJob sample = parse_job_netlist(spec);
    apply_variation(*sample.circuit, pelgrom, rng);
    const spice::DcResult r = spice::dc_operating_point(*sample.circuit);
    return constraints_pass(*sample.circuit, r.x(), constraints);
  };

  const McSession session(std::move(req));
  return session.run_yield_batch(batch, scalar);
}

}  // namespace

McRequest request_for(const JobSpec& spec) {
  McRequest req;
  req.seed = spec.seed;
  req.n = spec.n;
  req.threads = spec.threads;
  req.thread_budget = spec.thread_budget;
  req.chunk = spec.chunk;
  req.eval_mode = spec.eval_mode;
  req.keep_values = spec.keep_values;
  req.checkpoint_path = spec.checkpoint_path;
  req.checkpoint_every = spec.checkpoint_every;
  req.manifest_path = spec.manifest_path;
  req.progress_every = spec.progress_every;
  req.shard_lo = spec.shard_lo;
  req.shard_hi = spec.shard_hi;
  req.run_label = !spec.label.empty()
                      ? spec.label
                      : std::string("service.") + to_string(spec.kind);
  return req;
}

McResult run_job(const JobSpec& spec, CompiledCircuitCache* cache,
                 std::function<bool()> cancel) {
  RunHooks hooks;
  hooks.cancel = std::move(cancel);
  return run_job(spec, cache, std::move(hooks));
}

McResult run_job(const JobSpec& spec, CompiledCircuitCache* cache,
                 RunHooks hooks) {
  RELSIM_REQUIRE(spec.n > 0, "job needs a sample count (n > 0)");
  McRequest req = request_for(spec);
  req.cancel = std::move(hooks.cancel);
  req.progress = std::move(hooks.progress);
  req.on_checkpoint = std::move(hooks.on_checkpoint);
  switch (spec.kind) {
    case JobKind::kSynthetic: return run_synthetic(spec, std::move(req));
    case JobKind::kDcYield: return run_dc_yield(spec, cache, std::move(req));
  }
  throw Error("unknown job kind");
}

bool constraints_pass(const spice::Circuit& circuit, const Vector& x,
                      const std::vector<NodeConstraint>& constraints) {
  for (const NodeConstraint& c : constraints) {
    const spice::NodeId node = circuit.find_node(c.node);
    const double v = node == spice::kGround
                         ? 0.0
                         : x[static_cast<std::size_t>(node) - 1];
    if (v < c.lo || v > c.hi) return false;
  }
  return true;
}

const char* to_string(JobKind kind) {
  switch (kind) {
    case JobKind::kDcYield: return "dc_yield";
    case JobKind::kSynthetic: return "synthetic";
  }
  return "?";
}

const char* to_string(JobState state) {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kCancelled: return "cancelled";
    case JobState::kFailed: return "failed";
  }
  return "?";
}

}  // namespace relsim::service
