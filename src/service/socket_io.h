// POSIX socket plumbing for the service: listeners, connectors, and
// newline-framed I/O. Kept deliberately thin — everything protocol-shaped
// lives in protocol.h, everything policy-shaped in server.h.
#pragma once

#include <string>
#include <string_view>

#include "util/error.h"

namespace relsim::service {

/// A read or write exceeded the socket's configured deadline. Distinct
/// from the plain Error raised on disconnect so callers can tell a SLOW
/// peer (lease expiry, stuck worker) from a DEAD one (crash, close) and
/// react differently — re-issue vs. reconnect.
class SocketTimeoutError : public Error {
 public:
  explicit SocketTimeoutError(const std::string& what) : Error(what) {}
};

/// Arms SO_RCVTIMEO + SO_SNDTIMEO on `fd`: blocking reads/writes that
/// stall longer than `seconds` fail with EAGAIN, which LineReader
/// surfaces as SocketTimeoutError. `seconds <= 0` clears the deadlines
/// (block forever, the default for every socket this module creates).
void set_socket_timeout(int fd, double seconds);

/// Binds + listens on a Unix-domain stream socket, replacing any stale
/// socket file. Throws Error on failure (path too long for sockaddr_un,
/// bind/listen errno). Returns the listening fd.
int listen_unix(const std::string& path);

/// Binds + listens on 127.0.0.1:`port` (port 0 = ephemeral). Returns the
/// listening fd; `*bound_port` receives the actual port.
int listen_tcp(int port, int* bound_port);

int connect_unix(const std::string& path);
int connect_tcp(const std::string& host, int port);

/// Writes the whole buffer (retrying partial writes / EINTR). False on a
/// closed or failed peer. SIGPIPE is avoided via MSG_NOSIGNAL.
bool write_all(int fd, std::string_view data);

/// Buffered newline framing over a blocking fd.
class LineReader {
 public:
  explicit LineReader(int fd) : fd_(fd) {}

  /// Reads one '\n'-terminated frame into `out` (terminator stripped).
  /// Returns false on EOF or error. A final unterminated fragment at EOF
  /// is returned as a frame — the protocol layer decides if a truncated
  /// frame is an error (it is). When the fd carries a set_socket_timeout
  /// deadline, a stalled read throws SocketTimeoutError instead (the
  /// connection stays usable — no data was consumed).
  bool read_line(std::string& out);

 private:
  int fd_;
  std::string buf_;
  bool eof_ = false;
};

}  // namespace relsim::service
