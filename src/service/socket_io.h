// POSIX socket plumbing for the service: listeners, connectors, and
// newline-framed I/O. Kept deliberately thin — everything protocol-shaped
// lives in protocol.h, everything policy-shaped in server.h.
#pragma once

#include <string>
#include <string_view>

namespace relsim::service {

/// Binds + listens on a Unix-domain stream socket, replacing any stale
/// socket file. Throws Error on failure (path too long for sockaddr_un,
/// bind/listen errno). Returns the listening fd.
int listen_unix(const std::string& path);

/// Binds + listens on 127.0.0.1:`port` (port 0 = ephemeral). Returns the
/// listening fd; `*bound_port` receives the actual port.
int listen_tcp(int port, int* bound_port);

int connect_unix(const std::string& path);
int connect_tcp(const std::string& host, int port);

/// Writes the whole buffer (retrying partial writes / EINTR). False on a
/// closed or failed peer. SIGPIPE is avoided via MSG_NOSIGNAL.
bool write_all(int fd, std::string_view data);

/// Buffered newline framing over a blocking fd.
class LineReader {
 public:
  explicit LineReader(int fd) : fd_(fd) {}

  /// Reads one '\n'-terminated frame into `out` (terminator stripped).
  /// Returns false on EOF or error. A final unterminated fragment at EOF
  /// is returned as a frame — the protocol layer decides if a truncated
  /// frame is an error (it is).
  bool read_line(std::string& out);

 private:
  int fd_;
  std::string buf_;
  bool eof_ = false;
};

}  // namespace relsim::service
