// Fan-out of daemon telemetry events to subscribers, with hard isolation
// between producers and consumers.
//
// Publishers (executor threads, the submit path) must NEVER block on a
// slow subscriber, or a curious `relsim-cli top` could perturb job
// execution. So every subscription owns a bounded queue of shared event
// payloads: publish() appends under the subscription's own lock and, when
// the queue is full, drops the OLDEST event and counts it. The consumer
// learns about the gap through a synthesized {"event":"dropped","count":N}
// line the next time it reads — the count rides outside the shared
// payloads, so one slow reader's gaps never appear in another's stream.
//
// Event payloads are complete JSON lines, shared by shared_ptr across all
// matching subscriptions (serialize once, fan out by refcount).
//
// Filtering: a subscription created with job_filter == 0 receives every
// event; job_filter == J receives only events published with job_id == J.
// Daemon-wide stats events are published with job_id == 0 and therefore
// reach only unfiltered subscriptions.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace relsim::service {

class EventHub {
 public:
  class Subscription {
   public:
    /// Blocks up to `timeout` for the next event line. Returns true with
    /// the event in `out` (possibly a synthesized "dropped" record), false
    /// on timeout or when the hub closed and the queue is drained — check
    /// closed() to tell the two apart.
    bool next(std::string& out, std::chrono::milliseconds timeout);

    /// True once the hub closed AND every queued event was consumed.
    bool closed() const;

    /// Total events dropped from this subscription's queue so far.
    std::uint64_t dropped() const;

   private:
    friend class EventHub;
    mutable std::mutex mu;
    std::condition_variable cv;
    std::deque<std::shared_ptr<const std::string>> queue;
    std::uint64_t job_filter = 0;
    std::size_t capacity = 256;
    std::uint64_t dropped_total = 0;
    std::uint64_t dropped_pending = 0;  ///< not yet surfaced to the reader
    bool hub_closed = false;
  };

  explicit EventHub(std::size_t queue_capacity = 256)
      : capacity_(queue_capacity > 0 ? queue_capacity : 1) {}

  /// Registers a subscriber (job_filter semantics above). The returned
  /// subscription stays valid after close(); drop the shared_ptr or call
  /// unsubscribe() when done.
  std::shared_ptr<Subscription> subscribe(std::uint64_t job_filter = 0);

  void unsubscribe(const std::shared_ptr<Subscription>& sub);

  /// Delivers `line` to every matching subscription. Never blocks on
  /// consumers (drop-oldest, see above). No-op after close().
  void publish(std::uint64_t job_id, std::string line);

  /// Wakes every subscriber with end-of-stream; publish() becomes a no-op.
  void close();

  /// Cheap check for "is anyone listening" — publishers use it to skip
  /// serializing events nobody would receive.
  std::size_t subscriber_count() const {
    return count_.load(std::memory_order_relaxed);
  }

 private:
  mutable std::mutex mu_;
  std::vector<std::shared_ptr<Subscription>> subs_;
  std::atomic<std::size_t> count_{0};
  std::size_t capacity_;
  bool closed_ = false;
};

}  // namespace relsim::service
