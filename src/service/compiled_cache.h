// Compiled-circuit cache: content-hash keyed, LRU, thread-safe.
//
// The daemon's reuse story (DESIGN.md "Service architecture"): thousands
// of jobs share a handful of topologies, and everything topology-dependent
// — parse, stamp-pattern capture, symbolic LU — is paid once per UNIQUE
// netlist, then served to every job as a shared immutable CompiledCircuit.
// Keying is by FNV-1a of the exact netlist text (whitespace included): a
// client cannot poison another tenant's entry by reusing a name, and any
// edit misses. Hash collisions are resolved by comparing the stored text.
//
// Entries are shared_ptr<const CompiledCircuit>; eviction never invalidates
// a running job, it only drops the cache's own reference.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "spice/compiled_circuit.h"
#include "tech/tech.h"

namespace relsim::service {

class CompiledCircuitCache {
 public:
  /// `capacity` = max distinct netlists kept (>= 1).
  explicit CompiledCircuitCache(std::size_t capacity = 16);

  struct Entry {
    std::shared_ptr<const spice::CompiledCircuit> compiled;
    const TechNode* tech = nullptr;  ///< netlist .tech card, or tech_65nm()
    std::uint64_t key = 0;           ///< content hash (manifest/bench id)
  };

  /// Returns the compiled circuit for the netlist text, compiling on miss
  /// (under the cache lock: concurrent same-netlist requests compile once).
  /// Throws NetlistError / ConvergenceError like the underlying compile.
  Entry get(const std::string& netlist_text,
            const spice::CompiledCircuit::Options& options = {});

  /// Content hash used as the cache key.
  static std::uint64_t key_of(const std::string& netlist_text);

  std::size_t size() const;
  std::uint64_t hits() const;
  std::uint64_t misses() const;

 private:
  struct Slot {
    std::string text;  ///< full key text (collision guard)
    Entry entry;
  };

  mutable std::mutex mu_;
  std::size_t capacity_;
  std::list<Slot> lru_;  ///< front = most recently used
  std::unordered_multimap<std::uint64_t, std::list<Slot>::iterator> index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace relsim::service
