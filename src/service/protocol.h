// Wire protocol of the relsim service: line-delimited JSON frames.
//
// Every frame is ONE JSON object on ONE line, terminated by '\n' (the
// payload never contains a raw newline — JsonWriter escapes them). Client
// requests carry an "op"; server replies always carry "ok" plus either the
// op's payload or an "error" string. Documented frame-by-frame in
// DESIGN.md "Service architecture".
//
//   {"op":"ping"}
//   {"op":"submit","tenant":"t0","priority":0,"job":{...JobSpec...}}
//   {"op":"status","job_id":7}
//   {"op":"wait","job_id":7}          <- blocks until the job finishes
//   {"op":"result","job_id":7}        <- error when still running
//   {"op":"cancel","job_id":7}
//   {"op":"metrics"}
//   {"op":"shutdown"}
//
// This header is the single source of truth for JobSpec <-> JSON and
// McResult -> JSON; the server, the client library and the tests all go
// through it, so a field added here is wired end to end.
#pragma once

#include <string>

#include "obs/json_value.h"
#include "obs/json_writer.h"
#include "service/job.h"

namespace relsim::service {

/// Parses the "job" object of a submit frame. Unknown fields are ignored
/// (forward compatibility); wrong-typed or out-of-range fields throw
/// JsonParseError / Error with a client-presentable message.
JobSpec parse_job_spec(const obs::JsonValue& v);

/// Serializes a JobSpec as the "job" object (inverse of parse_job_spec).
void write_job_spec(obs::JsonWriter& w, const JobSpec& spec);

/// Serializes the reply payload of a finished run: counts, Wilson
/// estimate, stop reason, telemetry, and a CRC-32 over the per-sample
/// values bytes when they were kept (the cheap bit-identity witness:
/// doubles survive JsonWriter's shortest-round-trip formatting, and the
/// CRC proves the full value stream without shipping it).
void write_result(obs::JsonWriter& w, const McResult& result);

/// CRC-32 over the raw bytes of result.values (0 when empty).
std::uint32_t values_crc32(const McResult& result);

McEvalMode parse_eval_mode(const std::string& text);
JobKind parse_job_kind(const std::string& text);

}  // namespace relsim::service
