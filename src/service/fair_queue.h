// Fair-share job queue of the relsim service.
//
// Policy (documented in DESIGN.md "Service architecture"): every tenant
// accumulates virtual work — the sample counts of the jobs it has been
// granted. pop() always serves the eligible tenant with the LEAST virtual
// work, so a tenant queueing thousands of samples cannot starve one
// submitting small jobs; within a tenant, higher `priority` first, then
// submit order. Ties on virtual work break by tenant name so the schedule
// is deterministic for tests.
//
// The queue is a rendezvous, not an executor: executor threads block in
// pop() and the server owns their lifetime. shutdown() wakes everyone and
// makes pop() return nullptr forever after the backlog is drained-or-
// dropped (pending jobs are returned so the server can fail them).
#pragma once

#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "service/job.h"

namespace relsim::service {

class FairShareQueue {
 public:
  /// Enqueues a job (state stays kQueued; the server transitions it).
  /// Returns false when the queue is shut down.
  bool push(std::shared_ptr<Job> job);

  /// Blocks until a job is available or shutdown; nullptr on shutdown.
  /// The popped job's cost (spec.n, min 1) is charged to its tenant.
  std::shared_ptr<Job> pop();

  /// Removes a queued job by id (cancellation before it ran). Returns the
  /// job when it was still queued, nullptr when already popped/unknown.
  std::shared_ptr<Job> remove(std::uint64_t id);

  /// Stops dispensing WITHOUT dropping the backlog: pop() returns nullptr
  /// while paused (waking any blocked executors), push() still accepts.
  /// The drain sequence uses this so no new job starts while running ones
  /// are cancelled to their checkpoints; queued jobs stay queued and are
  /// failed by the eventual shutdown(). Irreversible by design — drain
  /// never resumes.
  void pause();

  /// Wakes all waiters; subsequent pop() returns nullptr. Returns every
  /// job still queued, in no particular order.
  std::vector<std::shared_ptr<Job>> shutdown();

  std::size_t depth() const;

  /// Virtual work charged to `tenant` so far (test/diagnostic hook).
  std::uint64_t tenant_virtual_work(const std::string& tenant) const;

 private:
  struct Tenant {
    std::uint64_t virtual_work = 0;
    /// Ordered run queue: highest priority first, then submit order.
    /// Key: (-priority, seq).
    std::map<std::pair<int, std::uint64_t>, std::shared_ptr<Job>> pending;
  };

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::string, Tenant> tenants_;
  std::size_t depth_ = 0;
  bool shutdown_ = false;
  bool paused_ = false;
};

}  // namespace relsim::service
