// Job model of the relsim service: what a client submits (JobSpec), and
// the server-side record tracking it from queue to result (Job).
//
// A JobSpec is deliberately McRequest-shaped: everything the scheduler
// honours (sample count, threads, budget, chunking, eval mode, checkpoint,
// manifest) maps 1:1 onto McRequest fields, so a job run through the
// daemon is the SAME run as the McRequest run directly — the round-trip
// bit-identity test in service_server_test.cpp holds the two paths equal.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "variability/mc_session.h"

namespace relsim::service {

/// One DC spec constraint of a dc_yield job: the solved voltage of `node`
/// must land in [lo, hi]. A sample passes when every constraint holds.
struct NodeConstraint {
  std::string node;
  double lo = -1e300;
  double hi = 1e300;
};

enum class JobKind : std::uint8_t {
  /// Netlist-driven Monte-Carlo DC yield: parse, Pelgrom-vary, solve,
  /// check NodeConstraints. Batched-eligible via the compiled-circuit
  /// cache.
  kDcYield = 0,
  /// Circuit-free Bernoulli yield (pass_prob against the per-sample RNG):
  /// exercises the full queue/schedule/result pipeline at negligible CPU
  /// cost. This is what the many-client smoke and bench_service submit.
  kSynthetic = 1,
};

const char* to_string(JobKind kind);

/// Client-supplied description of one yield run.
struct JobSpec {
  JobKind kind = JobKind::kDcYield;
  std::string netlist;                     ///< dc_yield: SPICE card text
  std::vector<NodeConstraint> constraints; ///< dc_yield: pass criteria
  double pass_prob = 0.5;                  ///< synthetic: Bernoulli p
  std::uint64_t seed = 0xC0FFEE;
  std::size_t n = 0;
  unsigned threads = 0;        ///< 0 = resolve_threads auto
  unsigned thread_budget = 0;  ///< per-job cap (McRequest::thread_budget)
  std::size_t chunk = 32;
  McEvalMode eval_mode = McEvalMode::kAuto;
  bool keep_values = false;
  std::string checkpoint_path;        ///< non-empty: resumable job
  std::size_t checkpoint_every = 4096;
  std::string manifest_path;          ///< non-empty: audit manifest
  std::string label;                  ///< run_label override (manifest/trace)
  /// Progress-snapshot cadence in committed samples (0 = auto: ~1% of n).
  /// Deterministic content per McProgress's contract; the daemon streams
  /// each snapshot to subscribers of this job.
  std::size_t progress_every = 0;
  /// Shard window [shard_lo, shard_hi) of GLOBAL sample indices
  /// (McRequest::shard_lo/shard_hi). shard_hi == 0 runs the whole range;
  /// a windowed job evaluates only its slice and checkpoints full-size
  /// images whose done bits lie inside the window, so a coordinator can
  /// merge_checkpoints() across workers.
  std::size_t shard_lo = 0;
  std::size_t shard_hi = 0;
};

enum class JobState : std::uint8_t {
  kQueued = 0,
  kRunning = 1,
  kDone = 2,       ///< completed (or stopped early by its stopping rule)
  kCancelled = 3,  ///< cancel token truncated the run; result + checkpoint kept
  kFailed = 4,     ///< evaluation threw; `error` carries what()
};

const char* to_string(JobState state);

/// Server-side job record. Lifetime: created at submit, kept in the
/// server's job table until shutdown so results stay retrievable after
/// the submitting client disconnects.
struct Job {
  std::uint64_t id = 0;
  std::string tenant;
  int priority = 0;        ///< higher runs first within a tenant
  std::uint64_t seq = 0;   ///< global submit order (FIFO tie-break)
  JobSpec spec;

  /// Set by the cancel op; polled by McSession via McRequest::cancel.
  std::atomic<bool> cancel_requested{false};

  // State below is guarded by `mu`; `cv` signals every transition.
  mutable std::mutex mu;
  std::condition_variable cv;
  JobState state = JobState::kQueued;
  McResult result;    ///< valid in kDone / kCancelled
  std::string error;  ///< valid in kFailed
  double queue_seconds = 0.0;  ///< submit -> execution start
  double run_seconds = 0.0;    ///< execution start -> finish
  /// Latest progress snapshot of a running job (status op, `top`).
  McProgress progress;
  bool has_progress = false;
};

}  // namespace relsim::service
