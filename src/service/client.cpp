#include "service/client.h"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <sstream>
#include <thread>
#include <utility>

#include "obs/json_writer.h"
#include "service/protocol.h"
#include "service/socket_io.h"
#include "util/error.h"

namespace relsim::service {

Client Client::connect_unix(const std::string& socket_path) {
  return Client(service::connect_unix(socket_path));
}

Client Client::connect_tcp(const std::string& host, int port) {
  return Client(service::connect_tcp(host, port));
}

Client::Client(int fd) : fd_(fd) {}

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      read_buf_(std::move(other.read_buf_)),
      last_reply_(std::move(other.last_reply_)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    read_buf_ = std::move(other.read_buf_);
    last_reply_ = std::move(other.last_reply_);
  }
  return *this;
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

void Client::set_timeout(double seconds) {
  RELSIM_REQUIRE(fd_ >= 0, "client is not connected");
  set_socket_timeout(fd_, seconds);
}

void Client::read_frame() {
  // Buffered newline framing; the buffer carries over between calls in
  // case the kernel delivers more than one frame's worth of bytes.
  for (;;) {
    const std::size_t nl = read_buf_.find('\n');
    if (nl != std::string::npos) {
      last_reply_ = read_buf_.substr(0, nl);
      read_buf_.erase(0, nl + 1);
      return;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      throw SocketTimeoutError("service reply timed out");
    }
    if (n <= 0) throw Error("service connection lost while awaiting reply");
    read_buf_.append(chunk, static_cast<std::size_t>(n));
  }
}

obs::JsonValue Client::call(const std::string& frame) {
  RELSIM_REQUIRE(fd_ >= 0, "client is not connected");
  if (!write_all(fd_, frame) || !write_all(fd_, "\n")) {
    throw Error("service connection lost while sending request");
  }
  read_frame();
  obs::JsonValue reply = obs::JsonValue::parse(last_reply_);
  if (!reply.get_bool("ok", false)) {
    throw Error("service error: " +
                reply.get_string("error", "unknown error"));
  }
  return reply;
}

std::uint64_t Client::submit(const std::string& tenant, int priority,
                             const JobSpec& spec) {
  std::ostringstream os;
  obs::JsonWriter w(os, 0);
  w.begin_object();
  w.kv("op", "submit");
  w.kv("tenant", tenant);
  w.kv("priority", priority);
  w.key("job");
  write_job_spec(w, spec);
  w.end_object();
  w.complete();
  const obs::JsonValue reply = call(os.str());
  return reply.get_u64("job_id", 0);
}

namespace {

std::string job_frame(const char* op, std::uint64_t job_id) {
  std::ostringstream os;
  obs::JsonWriter w(os, 0);
  w.begin_object();
  w.kv("op", op);
  w.kv("job_id", static_cast<unsigned long long>(job_id));
  w.end_object();
  w.complete();
  return os.str();
}

}  // namespace

obs::JsonValue Client::wait(std::uint64_t job_id) {
  return call(job_frame("wait", job_id));
}

obs::JsonValue Client::status(std::uint64_t job_id) {
  return call(job_frame("status", job_id));
}

obs::JsonValue Client::result(std::uint64_t job_id) {
  return call(job_frame("result", job_id));
}

obs::JsonValue Client::cancel(std::uint64_t job_id) {
  return call(job_frame("cancel", job_id));
}

obs::JsonValue Client::metrics() { return call(R"({"op":"metrics"})"); }

std::string Client::metrics_text() {
  return call(R"({"op":"metrics_text"})").get_string("text", "");
}

void Client::ping() { call(R"({"op":"ping"})"); }

void Client::shutdown() { call(R"({"op":"shutdown"})"); }

void Client::subscribe(
    std::uint64_t job_filter,
    const std::function<bool(const obs::JsonValue&)>& on_event) {
  std::ostringstream os;
  obs::JsonWriter w(os, 0);
  w.begin_object();
  w.kv("op", "subscribe");
  if (job_filter != 0) {
    w.kv("job_id", static_cast<unsigned long long>(job_filter));
  }
  w.end_object();
  w.complete();
  // The ack is an ordinary ok/error reply; everything after it is events.
  call(os.str());
  for (;;) {
    try {
      read_frame();
    } catch (const SocketTimeoutError&) {
      // A silent stream under a set_timeout deadline is a SIGNAL (lease
      // expiry), not an end-of-stream — the caller must see it.
      throw;
    } catch (const Error&) {
      return;  // daemon closed the stream (or the connection dropped)
    }
    if (last_reply_.empty()) continue;
    if (!on_event(obs::JsonValue::parse(last_reply_))) return;
  }
}

std::chrono::milliseconds poll_backoff(std::uint64_t job_id,
                                       unsigned attempt) {
  // Exponential 50 ms · 2^attempt, capped at 1 s. The old uncapped-at-2s
  // doubling meant a long-running job was polled every 2 s with every
  // waiter in phase; the cap keeps terminal-state latency under a second
  // and the jitter de-phases concurrent waiters.
  constexpr std::uint64_t kBaseMs = 50;
  constexpr std::uint64_t kCapMs = 1000;
  const std::uint64_t base =
      std::min(kBaseMs << std::min(attempt, 10u /* 50ms<<10 > cap */),
               kCapMs);
  // FNV-1a over (job_id, attempt): deterministic jitter in [-25%, +25%].
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (8 * b)) & 0xFF;
      h *= 1099511628211ull;
    }
  };
  mix(job_id);
  mix(attempt);
  const std::int64_t span =
      static_cast<std::int64_t>(base / 2);  // full jitter window, ±25%
  const std::int64_t offset =
      span > 0 ? static_cast<std::int64_t>(h % static_cast<std::uint64_t>(
                                                   span + 1)) -
                     span / 2
               : 0;
  return std::chrono::milliseconds(
      static_cast<std::int64_t>(base) + offset);
}

obs::JsonValue wait_with_events(
    std::uint64_t job_id, const std::function<Client()>& connect,
    const std::function<void(const obs::JsonValue&)>& on_event) {
  bool streamed = false;
  try {
    Client stream = connect();
    stream.subscribe(job_id, [&](const obs::JsonValue& event) {
      if (on_event) on_event(event);
      const std::string state = event.get_string("state", "");
      const bool terminal =
          state == "done" || state == "cancelled" || state == "failed";
      return !terminal;
    });
    streamed = true;
  } catch (const Error&) {
    // Pre-telemetry daemon ("unknown op 'subscribe'") or the stream
    // dropped mid-job — either way the poll loop below settles it.
  }
  // The subscribe stream carries no result payload (and may have ended
  // early); fetch the authoritative terminal state over a fresh
  // request/reply connection. When streaming worked the job is already
  // terminal and the first status call returns immediately.
  Client poll = connect();
  if (streamed) return poll.wait(job_id);
  for (unsigned attempt = 0;; ++attempt) {
    obs::JsonValue reply = poll.status(job_id);
    const std::string state = reply.get_string("state", "");
    if (state == "done" || state == "cancelled" || state == "failed") {
      return reply;
    }
    if (on_event) on_event(reply);
    std::this_thread::sleep_for(poll_backoff(job_id, attempt));
  }
}

}  // namespace relsim::service
