#include "service/client.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <sstream>
#include <utility>

#include "obs/json_writer.h"
#include "service/protocol.h"
#include "service/socket_io.h"
#include "util/error.h"

namespace relsim::service {

Client Client::connect_unix(const std::string& socket_path) {
  return Client(service::connect_unix(socket_path));
}

Client Client::connect_tcp(const std::string& host, int port) {
  return Client(service::connect_tcp(host, port));
}

Client::Client(int fd) : fd_(fd) {}

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      read_buf_(std::move(other.read_buf_)),
      last_reply_(std::move(other.last_reply_)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    read_buf_ = std::move(other.read_buf_);
    last_reply_ = std::move(other.last_reply_);
  }
  return *this;
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

obs::JsonValue Client::call(const std::string& frame) {
  RELSIM_REQUIRE(fd_ >= 0, "client is not connected");
  if (!write_all(fd_, frame) || !write_all(fd_, "\n")) {
    throw Error("service connection lost while sending request");
  }
  // Buffered newline framing; the buffer carries over between calls in
  // case the kernel delivers more than one reply's worth of bytes.
  for (;;) {
    const std::size_t nl = read_buf_.find('\n');
    if (nl != std::string::npos) {
      last_reply_ = read_buf_.substr(0, nl);
      read_buf_.erase(0, nl + 1);
      obs::JsonValue reply = obs::JsonValue::parse(last_reply_);
      if (!reply.get_bool("ok", false)) {
        throw Error("service error: " +
                    reply.get_string("error", "unknown error"));
      }
      return reply;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) throw Error("service connection lost while awaiting reply");
    read_buf_.append(chunk, static_cast<std::size_t>(n));
  }
}

std::uint64_t Client::submit(const std::string& tenant, int priority,
                             const JobSpec& spec) {
  std::ostringstream os;
  obs::JsonWriter w(os, 0);
  w.begin_object();
  w.kv("op", "submit");
  w.kv("tenant", tenant);
  w.kv("priority", priority);
  w.key("job");
  write_job_spec(w, spec);
  w.end_object();
  w.complete();
  const obs::JsonValue reply = call(os.str());
  return reply.get_u64("job_id", 0);
}

namespace {

std::string job_frame(const char* op, std::uint64_t job_id) {
  std::ostringstream os;
  obs::JsonWriter w(os, 0);
  w.begin_object();
  w.kv("op", op);
  w.kv("job_id", static_cast<unsigned long long>(job_id));
  w.end_object();
  w.complete();
  return os.str();
}

}  // namespace

obs::JsonValue Client::wait(std::uint64_t job_id) {
  return call(job_frame("wait", job_id));
}

obs::JsonValue Client::status(std::uint64_t job_id) {
  return call(job_frame("status", job_id));
}

obs::JsonValue Client::result(std::uint64_t job_id) {
  return call(job_frame("result", job_id));
}

obs::JsonValue Client::cancel(std::uint64_t job_id) {
  return call(job_frame("cancel", job_id));
}

obs::JsonValue Client::metrics() { return call(R"({"op":"metrics"})"); }

void Client::ping() { call(R"({"op":"ping"})"); }

void Client::shutdown() { call(R"({"op":"shutdown"})"); }

}  // namespace relsim::service
