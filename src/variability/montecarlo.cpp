// montecarlo.h is header-only; this translation unit exists so the target
// has a compiled object and the header is syntax-checked standalone.
#include "variability/montecarlo.h"
