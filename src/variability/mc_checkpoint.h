// RSMCKPT4 checkpoint images: the on-disk representation of a (possibly
// partial) Monte-Carlo run, reusable outside McSession.
//
// Format ("RSMCKPT4"): 8-byte magic, {seed, n, run kind, done count,
// strategy kind, strategy digest, flags} header words, done bitmap,
// per-sample failure-status bytes, per-sample attempt counts, per-sample
// values, the per-sample importance LOG weights when flags bit 0 is set,
// and a trailing CRC-32 over everything before it. Writes are atomic (tmp
// file + rename), so a reader never observes a half-written image.
//
// "RSMCKPT3" images (raw weights instead of log weights) still load when
// they carry no weights section; a v3 image with weights is rejected as
// corrupt — raw ratios that underflowed to 0 cannot be recovered.
//
// McSession reads/writes these through mc_session.cpp; the distributed
// sharding layer (shard.h) loads per-shard partial images directly and
// merges them deterministically. The load/save pair here is pure
// serialization — REQUEST validation (does this file belong to this
// seed/strategy?) is the caller's job, so a merge can compare images
// without pretending to be a run.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/error.h"

namespace relsim {

/// Run kinds tagged in checkpoints so a yield checkpoint cannot silently
/// resume a metric run (the stored per-sample doubles mean different
/// things).
enum class McCheckpointRunKind : std::uint64_t { kYield = 0, kMetric = 1 };

/// A checkpoint that failed its integrity check: bad magic/version, CRC
/// mismatch, truncation, or a bitmap that disagrees with the header
/// count. Distinct from Error so callers can apply a recovery policy to
/// corruption while still treating request mismatches as hard errors.
class McCheckpointCorruptError : public Error {
 public:
  explicit McCheckpointCorruptError(const std::string& what) : Error(what) {}
};

/// In-memory image of one checkpoint file. All per-sample vectors have
/// exactly `n` entries after a successful load (`weights` is empty when
/// the image carries no importance weights).
struct McCheckpointImage {
  std::uint64_t seed = 0;
  std::uint64_t n = 0;
  McCheckpointRunKind kind = McCheckpointRunKind::kYield;
  std::uint64_t strategy_kind = 0;
  std::uint64_t strategy_digest = 0;
  std::vector<std::uint8_t> done;      ///< 0/1 per sample
  std::vector<std::uint8_t> status;    ///< McFailureKind per sample
  std::vector<std::uint8_t> attempts;  ///< evaluation attempts per sample
  std::vector<double> values;
  std::vector<double> weights;  ///< log weights; empty = none stored

  bool has_weights() const { return !weights.empty(); }
  std::size_t done_count() const;

  /// True when `other` describes the same run: seed, n, kind, strategy
  /// identity and weight presence all agree. Done bitmaps and values are
  /// NOT compared — partial images of one run match by design.
  bool same_run(const McCheckpointImage& other) const;
};

/// Loads `path` into `image`. Returns false when the file does not exist
/// (image untouched); throws McCheckpointCorruptError when the file fails
/// its integrity check. Never validates against a request — see
/// McCheckpointImage::same_run for identity comparison.
bool load_checkpoint_image(const std::string& path, McCheckpointImage& image);

/// Atomically (tmp + rename) serializes `image`, CRC-protected. The done
/// count in the header is derived from the bitmap. Honours the
/// kCheckpointCorrupt fault-injection site (post-rename byte flip) so
/// chaos tests exercise the CRC path.
void save_checkpoint_image(const std::string& path,
                           const McCheckpointImage& image);

}  // namespace relsim
