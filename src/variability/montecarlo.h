// Monte-Carlo driver with deterministic per-sample seeding.
//
// Yield (Sec. 2 of the paper) is "the proportion of fabricated circuits
// which meet the design specifications"; estimate_yield() runs N independent
// virtual fabrications and reports that proportion with a Wilson 95%
// interval. Every sample's RNG is seeded as derive_seed(base, {sample}),
// so sample i is reproducible in isolation (debuggable failures) and the
// result does not depend on evaluation order.
//
// MonteCarloEngine is the simple serial reference. Parallel, early-stopped
// and checkpointed runs go through McSession (variability/mc_session.h) —
// the *_parallel overloads below are deprecated shims kept so existing
// callers compile; they forward to a work-stealing McSession and return
// bit-identical results.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "rng/rng.h"
#include "stats/summary.h"
#include "util/error.h"
#include "variability/mc_session.h"

namespace relsim {

class MonteCarloEngine {
 public:
  explicit MonteCarloEngine(std::uint64_t base_seed) : base_seed_(base_seed) {}

  std::uint64_t base_seed() const { return base_seed_; }

  /// RNG for sample `index` (fresh, decorrelated stream).
  Xoshiro256 rng_for(std::size_t index) const {
    return Xoshiro256(
        derive_seed(base_seed_, {static_cast<std::uint64_t>(index)}));
  }

  /// Runs `fn(rng, index)` for n samples, collecting the returned metric.
  template <typename Fn>
  std::vector<double> run_metric(std::size_t n, Fn&& fn) const {
    std::vector<double> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      Xoshiro256 rng = rng_for(i);
      out.push_back(fn(rng, i));
    }
    return out;
  }

  /// Runs `pass(rng, index)` for n samples and returns the pass proportion.
  template <typename Fn>
  YieldEstimate estimate_yield(std::size_t n, Fn&& pass) const {
    YieldEstimate est;
    est.total = n;
    for (std::size_t i = 0; i < n; ++i) {
      Xoshiro256 rng = rng_for(i);
      if (pass(rng, i)) ++est.passed;
    }
    est.interval = wilson_interval(est.passed, est.total);
    return est;
  }

  /// Deprecated parallel shims. Because every sample owns a derived seed,
  /// the results are bit-identical to the serial path for ANY thread count;
  /// the fn must only be safe to call concurrently on distinct samples.
  /// New code should build an McRequest and use McSession directly — it
  /// adds early stopping, checkpoint/resume and telemetry on top.
  ///
  /// Removal schedule (see README migration notes): deprecated since the
  /// McSession PR, in-repo callers fully migrated as of the service PR
  /// (one pinned compat test remains); the shims are DELETED in the next
  /// API-cleanup PR. Out-of-tree callers must migrate now.
  template <typename Fn>
  [[deprecated(
      "use McSession::run_metric (variability/mc_session.h); this shim is "
      "scheduled for deletion in the next API-cleanup PR — see README "
      "migration notes")]]
  std::vector<double> run_metric_parallel(std::size_t n, Fn&& fn,
                                          unsigned threads = 0) const {
    McSession session(parallel_request(n, threads));
    return std::move(session.run_metric(McMetric(std::forward<Fn>(fn))).values);
  }

  template <typename Fn>
  [[deprecated(
      "use McSession::run_yield (variability/mc_session.h); this shim is "
      "scheduled for deletion in the next API-cleanup PR — see README "
      "migration notes")]]
  YieldEstimate estimate_yield_parallel(std::size_t n, Fn&& pass,
                                        unsigned threads = 0) const {
    McSession session(parallel_request(n, threads));
    return session.run_yield(McPredicate(std::forward<Fn>(pass))).estimate;
  }

 private:
  McRequest parallel_request(std::size_t n, unsigned threads) const {
    McRequest req;
    req.seed = base_seed_;
    req.n = n;
    req.threads = threads;
    return req;
  }

  std::uint64_t base_seed_;
};

}  // namespace relsim
