// Monte-Carlo driver with deterministic per-sample seeding.
//
// Yield (Sec. 2 of the paper) is "the proportion of fabricated circuits
// which meet the design specifications"; estimate_yield() runs N independent
// virtual fabrications and reports that proportion with a Wilson 95%
// interval. Every sample's RNG is seeded as derive_seed(base, {sample}),
// so sample i is reproducible in isolation (debuggable failures) and the
// result does not depend on evaluation order.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "rng/rng.h"
#include "stats/summary.h"
#include "util/error.h"

namespace relsim {

struct YieldEstimate {
  std::size_t passed = 0;
  std::size_t total = 0;
  ProportionInterval interval{0.0, 0.0, 0.0};

  double yield() const { return interval.estimate; }
};

class MonteCarloEngine {
 public:
  explicit MonteCarloEngine(std::uint64_t base_seed) : base_seed_(base_seed) {}

  std::uint64_t base_seed() const { return base_seed_; }

  /// RNG for sample `index` (fresh, decorrelated stream).
  Xoshiro256 rng_for(std::size_t index) const {
    return Xoshiro256(
        derive_seed(base_seed_, {static_cast<std::uint64_t>(index)}));
  }

  /// Runs `fn(rng, index)` for n samples, collecting the returned metric.
  template <typename Fn>
  std::vector<double> run_metric(std::size_t n, Fn&& fn) const {
    std::vector<double> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      Xoshiro256 rng = rng_for(i);
      out.push_back(fn(rng, i));
    }
    return out;
  }

  /// Runs `pass(rng, index)` for n samples and returns the pass proportion.
  template <typename Fn>
  YieldEstimate estimate_yield(std::size_t n, Fn&& pass) const {
    YieldEstimate est;
    est.total = n;
    for (std::size_t i = 0; i < n; ++i) {
      Xoshiro256 rng = rng_for(i);
      if (pass(rng, i)) ++est.passed;
    }
    est.interval = wilson_interval(est.passed, est.total);
    return est;
  }

  /// Parallel variants. Because every sample owns a derived seed, the
  /// results are bit-identical to the serial path for ANY thread count —
  /// the fn must only be safe to call concurrently on distinct samples
  /// (true for anything that builds its circuit per sample).
  template <typename Fn>
  std::vector<double> run_metric_parallel(std::size_t n, Fn&& fn,
                                          unsigned threads = 0) const {
    const unsigned workers = resolve_threads(threads);
    std::vector<double> out(n, 0.0);
    parallel_for(n, workers, [&](std::size_t i) {
      Xoshiro256 rng = rng_for(i);
      out[i] = fn(rng, i);
    });
    return out;
  }

  template <typename Fn>
  YieldEstimate estimate_yield_parallel(std::size_t n, Fn&& pass,
                                        unsigned threads = 0) const {
    const unsigned workers = resolve_threads(threads);
    std::atomic<std::size_t> passed{0};
    parallel_for(n, workers, [&](std::size_t i) {
      Xoshiro256 rng = rng_for(i);
      if (pass(rng, i)) passed.fetch_add(1, std::memory_order_relaxed);
    });
    YieldEstimate est;
    est.total = n;
    est.passed = passed.load();
    est.interval = wilson_interval(est.passed, est.total);
    return est;
  }

 private:
  static unsigned resolve_threads(unsigned requested) {
    if (requested > 0) return requested;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 4;
  }

  /// Static block partition: each worker owns a contiguous index range, so
  /// no work-queue synchronization is needed and exceptions in worker
  /// bodies are rethrown on the caller's thread.
  template <typename Body>
  static void parallel_for(std::size_t n, unsigned workers, Body&& body) {
    if (n == 0) return;
    workers = static_cast<unsigned>(
        std::min<std::size_t>(workers, n));
    if (workers <= 1) {
      for (std::size_t i = 0; i < n; ++i) body(i);
      return;
    }
    std::vector<std::thread> pool;
    std::vector<std::exception_ptr> errors(workers);
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
      pool.emplace_back([&, w]() {
        const std::size_t lo = n * w / workers;
        const std::size_t hi = n * (w + 1) / workers;
        try {
          for (std::size_t i = lo; i < hi; ++i) body(i);
        } catch (...) {
          errors[w] = std::current_exception();
        }
      });
    }
    for (auto& t : pool) t.join();
    for (const auto& e : errors) {
      if (e) std::rethrow_exception(e);
    }
  }

  std::uint64_t base_seed_;
};

}  // namespace relsim
