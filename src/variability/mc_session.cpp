#include "variability/mc_session.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <map>
#include <mutex>
#include <thread>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "testing/fault_injection.h"
#include "util/error.h"
#include "util/log.h"
#include "variability/mc_checkpoint.h"

namespace relsim {

const char* to_string(McStopReason reason) {
  switch (reason) {
    case McStopReason::kCompleted:
      return "completed";
    case McStopReason::kCiTarget:
      return "ci-target";
    case McStopReason::kThresholdPassed:
      return "threshold-passed";
    case McStopReason::kThresholdFailed:
      return "threshold-failed";
    case McStopReason::kAborted:
      return "aborted";
    case McStopReason::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

const char* to_string(McEvalMode mode) {
  switch (mode) {
    case McEvalMode::kAuto:
      return "auto";
    case McEvalMode::kPerSample:
      return "per-sample";
    case McEvalMode::kBatched:
      return "batched";
  }
  return "unknown";
}

const char* to_string(McFailurePolicy policy) {
  switch (policy) {
    case McFailurePolicy::kAbort:
      return "abort";
    case McFailurePolicy::kSkip:
      return "skip";
    case McFailurePolicy::kRetryThenSkip:
      return "retry-then-skip";
  }
  return "unknown";
}

const char* to_string(McFailureKind kind) {
  switch (kind) {
    case McFailureKind::kNone:
      return "none";
    case McFailureKind::kConvergence:
      return "convergence";
    case McFailureKind::kSingular:
      return "singular";
    case McFailureKind::kNonFinite:
      return "non-finite";
    case McFailureKind::kOther:
      return "other";
  }
  return "unknown";
}

unsigned resolve_threads(unsigned requested, unsigned budget_cap) {
  const auto capped = [budget_cap](unsigned resolved) {
    return budget_cap > 0 ? std::min(resolved, budget_cap) : resolved;
  };
  if (requested > 0) return capped(requested);
  // Deliberately re-read on every call (not cached once per process): a
  // daemon resolves per job, so env/budget changes apply without restart.
  if (const char* env = std::getenv("RELSIM_THREADS"); env != nullptr) {
    char* end = nullptr;
    const unsigned long parsed = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && parsed > 0 && parsed <= 4096) {
      return capped(static_cast<unsigned>(parsed));
    }
    static std::once_flag warned_env;
    std::call_once(warned_env, [env] {
      log_warn("ignoring invalid RELSIM_THREADS value \"", env,
               "\" (expected an integer in [1, 4096])");
    });
  }
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) {
    static std::once_flag warned_hw;
    std::call_once(warned_hw, [] {
      log_warn("hardware_concurrency() reported 0; falling back to 4 worker "
               "threads (set RELSIM_THREADS to override)");
    });
    return capped(4);
  }
  return capped(hw);
}

namespace {

// Run kinds tagged in checkpoints so a yield checkpoint cannot silently
// resume a metric run (the stored per-sample doubles mean different things).
// RSMCKPT4 serialization lives in variability/mc_checkpoint.* so the shard
// merge path (variability/shard.*) reads/writes the exact same format.
using RunKind = McCheckpointRunKind;

struct Range {
  std::size_t lo = 0;
  std::size_t hi = 0;

  std::size_t size() const { return hi - lo; }
};

/// Loads a checkpoint into `done`/`values`/`status`/`attempts`; returns
/// the restored sample count (0 when the file does not exist). A file that
/// fails its integrity check (CRC, magic, truncation, bitmap/count
/// disagreement) throws under kThrow or is logged + dropped under
/// kDiscardCorrupt (`discarded` reports which happened); a file that is
/// INTACT but belongs to a different request always throws.
std::size_t load_checkpoint(const std::string& path, std::uint64_t seed,
                            std::size_t n, RunKind kind,
                            const SampleStrategyConfig& strategy,
                            McCheckpointRecovery recovery,
                            std::vector<std::uint8_t>& done,
                            std::vector<double>& values,
                            std::vector<double>& weights,
                            std::vector<std::uint8_t>& status,
                            std::vector<std::uint8_t>& attempts,
                            bool& discarded) {
  static obs::Counter& c_discarded =
      obs::metrics().counter("mc.checkpoint_discarded");
  McCheckpointImage image;
  try {
    if (!load_checkpoint_image(path, image)) return 0;
  } catch (const McCheckpointCorruptError& e) {
    if (recovery != McCheckpointRecovery::kDiscardCorrupt) throw;
    log_warn("discarding ", e.what(), " — restarting from zero samples");
    c_discarded.inc();
    discarded = true;
    return 0;
  }
  RELSIM_REQUIRE(image.seed == seed && image.n == n && image.kind == kind,
                 "Monte-Carlo checkpoint does not match this request "
                 "(different seed, sample count or run kind): " + path);
  RELSIM_REQUIRE(
      image.strategy_kind == static_cast<std::uint64_t>(strategy.kind) &&
          image.strategy_digest == strategy.digest(),
      "Monte-Carlo checkpoint was written under a different sampling "
      "strategy (kind or parameters): " + path);
  RELSIM_REQUIRE(image.has_weights() == !weights.empty(),
                 "Monte-Carlo checkpoint weight section disagrees with the "
                 "strategy: " + path);
  const std::size_t restored = image.done_count();
  done = std::move(image.done);
  status = std::move(image.status);
  attempts = std::move(image.attempts);
  values = std::move(image.values);
  if (image.has_weights()) weights = std::move(image.weights);
  return restored;
}

/// Atomically (tmp + rename) writes the bitmap, per-sample failure state
/// and values, CRC-protected.
void save_checkpoint(const std::string& path, std::uint64_t seed,
                     std::size_t n, RunKind kind,
                     const SampleStrategyConfig& strategy,
                     const std::vector<std::uint8_t>& done,
                     const std::vector<double>& values,
                     const std::vector<double>& weights,
                     const std::vector<std::uint8_t>& status,
                     const std::vector<std::uint8_t>& attempts) {
  McCheckpointImage image;
  image.seed = seed;
  image.n = static_cast<std::uint64_t>(n);
  image.kind = kind;
  image.strategy_kind = static_cast<std::uint64_t>(strategy.kind);
  image.strategy_digest = strategy.digest();
  image.done = done;
  image.status = status;
  image.attempts = attempts;
  image.values = values;
  image.weights = weights;
  save_checkpoint_image(path, image);
}

/// The shared run driver. `eval(point)` returns the per-sample double
/// (metric value, or 0/1 for yield runs); legacy (rng, index) callbacks
/// are wrapped by the McSession entry points and read the plain stream
/// through the point view, which is bit-compatible with PR-2.
McResult run_session(const McRequest& req, RunKind kind,
                     const std::function<double(McSamplePoint&)>& eval,
                     const McBatchEval* batch = nullptr) {
  obs::init_trace_from_env();
  // Work counters (deterministic: identical for any thread count/chunk
  // size on a full run of the same request — see obs/metrics.h). Timing
  // goes to gauges/histograms, which carry wall-clock and are not.
  static obs::Counter& c_runs = obs::metrics().counter("mc.runs");
  static obs::Counter& c_evaluated =
      obs::metrics().counter("mc.samples_evaluated");
  static obs::Counter& c_batched =
      obs::metrics().counter("mc.samples_batched");
  static obs::Counter& c_restored =
      obs::metrics().counter("mc.samples_restored");
  static obs::Counter& c_chunks = obs::metrics().counter("mc.chunks_retired");
  static obs::Counter& c_steals = obs::metrics().counter("mc.steal_events");
  static obs::Counter& c_stop_checks =
      obs::metrics().counter("mc.stop_checks");
  static obs::Counter& c_early_stops =
      obs::metrics().counter("mc.early_stops");
  static obs::Counter& c_ckpt_writes =
      obs::metrics().counter("mc.checkpoint_writes");
  static obs::Counter& c_failed =
      obs::metrics().counter("mc.samples_failed");
  static obs::Counter& c_retries =
      obs::metrics().counter("mc.sample_retries");
  static obs::Counter& c_recovered =
      obs::metrics().counter("mc.samples_recovered");
  static obs::Histogram& h_ckpt_seconds =
      obs::metrics().histogram("mc.checkpoint_seconds");
  static obs::Gauge& g_busy =
      obs::metrics().gauge("mc.worker_busy_seconds");

  const auto t_start = std::chrono::steady_clock::now();
  const std::size_t n = req.n;
  const bool yield_kind = kind == RunKind::kYield;
  RELSIM_REQUIRE(yield_kind || (req.strategy.kind !=
                                    McSampleStrategy::kStratified &&
                                req.strategy.kind !=
                                    McSampleStrategy::kImportance),
                 "stratified/importance strategies are yield-run only "
                 "(their estimators are proportion estimators)");

  // Shard window: the run evaluates only [win_lo, win_hi) of the global
  // index range. Sample i's outcome is a pure function of {request, i}, so
  // windowed shards compose bit-identically with the full run. The window
  // changes scheduling and reporting ONLY — seeds, strategy points and the
  // checkpoint layout all stay full-size global.
  const bool windowed = req.shard_hi > 0;
  RELSIM_REQUIRE(!windowed || (req.shard_lo < req.shard_hi &&
                               req.shard_hi <= n),
                 "shard window [shard_lo, shard_hi) must satisfy "
                 "lo < hi <= n");
  // Early stopping decides on the committed prefix of the FULL run; a
  // window only sees its own slice, so any decision it made would depend
  // on the shard plan — refused rather than silently wrong.
  RELSIM_REQUIRE(!windowed || !req.stopping.enabled(),
                 "shard-windowed runs cannot use early-stopping rules "
                 "(a window cannot decide for the whole run)");
  const std::size_t win_lo = windowed ? req.shard_lo : 0;
  const std::size_t win_hi = windowed ? req.shard_hi : n;
  const std::size_t win_n = win_hi - win_lo;

  McResult result;
  result.requested = win_n;
  result.run.kind = yield_kind ? "yield" : "metric";
  if (n == 0) return result;
  c_runs.inc();
  obs::metrics()
      .counter(std::string("mc.strategy.") + to_string(req.strategy.kind))
      .inc();

  // Validates the config (including the per-stratum allocation) and owns
  // the point set; shared read-only by every worker.
  const StrategyDriver driver(req.strategy, req.seed, n);
  const bool weighted = driver.weighted();
  const bool stratified = driver.stratified();

  const unsigned workers = static_cast<unsigned>(std::min<std::size_t>(
      resolve_threads(req.threads, req.thread_budget), win_n));
  result.run.threads = workers;
  obs::TraceSpan run_span("mc.run", "n", static_cast<double>(win_n),
                          "workers", static_cast<double>(workers));

  // The unit of scheduling AND of commit: contiguous index ranges, ordered
  // by lo, covering exactly the window. Work stealing uses fixed chunks
  // anchored at win_lo (a chunk-aligned shard plan therefore reproduces the
  // global chunk grid); the static baseline uses one block per worker (the
  // legacy parallel_for partition, over the window).
  std::vector<Range> ranges;
  if (req.partition == McPartition::kStaticBlocks) {
    for (std::size_t w = 0; w < workers; ++w) {
      const Range r{win_lo + win_n * w / workers,
                    win_lo + win_n * (w + 1) / workers};
      if (r.size() > 0) ranges.push_back(r);
    }
  } else {
    const std::size_t chunk = std::max<std::size_t>(1, req.chunk);
    for (std::size_t lo = win_lo; lo < win_hi; lo += chunk) {
      ranges.push_back({lo, std::min(lo + chunk, win_hi)});
    }
  }
  const std::size_t range_count = ranges.size();

  // Per-sample state. `done` marks samples restored from the checkpoint
  // (read-only during the run); workers publish finished work at range
  // granularity through `range_done`. `status` holds the McFailureKind of
  // censored samples (0 = evaluated fine), `attempts` the evaluation
  // attempts spent; both are written only by the worker owning the sample.
  std::vector<double> values(n, 0.0);
  // Per-sample likelihood-ratio LOG weights (importance strategy only;
  // empty otherwise — the empty/non-empty state doubles as the checkpoint
  // flag). Stored and checkpointed in log space: a high-sigma shift's raw
  // ratios sit far outside double range.
  std::vector<double> weights(weighted ? n : 0, 0.0);
  std::vector<std::uint8_t> done(n, 0);
  std::vector<std::uint8_t> status(n, 0);
  std::vector<std::uint8_t> attempts(n, 0);
  std::size_t resumed = 0;
  bool checkpoint_discarded = false;
  if (!req.checkpoint_path.empty()) {
    resumed = load_checkpoint(req.checkpoint_path, req.seed, n, kind,
                              req.strategy, req.checkpoint_recovery, done,
                              values, weights, status, attempts,
                              checkpoint_discarded);
    if (windowed) {
      // Report (and count) only the restored samples this window owns;
      // out-of-window done bits stay in `done` untouched so they survive
      // into every checkpoint this shard writes (merge round-trips).
      resumed = 0;
      for (std::size_t i = win_lo; i < win_hi; ++i) {
        if (done[i]) ++resumed;
      }
    }
    c_restored.inc(static_cast<std::int64_t>(resumed));
  }
  result.resumed = resumed;
  result.run.checkpoint_discarded = checkpoint_discarded;

  std::vector<std::atomic<std::uint8_t>> range_done(range_count);
  std::atomic<std::size_t> cursor{0};
  std::atomic<bool> stop{false};
  // Cooperative cancellation: any worker observing the token latches the
  // flag and raises `stop`, so in-flight ranges are abandoned mid-chunk
  // (unretired — the committed prefix stays exact) and the run winds down
  // through the normal early-stop machinery.
  std::atomic<bool> cancelled{false};
  static obs::Counter& c_cancelled = obs::metrics().counter("mc.cancelled");
  auto poll_cancel = [&req, &cancelled, &stop]() {
    if (!req.cancel) return false;
    if (cancelled.load(std::memory_order_relaxed)) return true;
    if (!req.cancel()) return false;
    if (!cancelled.exchange(true, std::memory_order_relaxed)) {
      c_cancelled.inc();
      obs::trace_instant("mc.cancelled");
    }
    stop.store(true, std::memory_order_relaxed);
    return true;
  };

  // Commit state, guarded by `mu`: a contiguous prefix of retired ranges is
  // folded into the accumulators in sample-index order, which makes every
  // reported number independent of scheduling.
  std::mutex mu;
  std::size_t committed_ranges = 0;
  std::size_t committed = 0;
  std::size_t passed = 0;
  std::size_t failed_committed = 0;
  RunningStats metric_stats;
  // Strategy accumulators, fed in the same index-ordered commit pass as
  // the plain tallies — so they inherit bit-identity across worker counts.
  WeightedSums wsums;
  std::vector<StratumCount> strata_tally(driver.stratum_count());
  for (std::size_t k = 0; k < strata_tally.size(); ++k) {
    strata_tally[k].weight = req.strategy.strata[k].weight;
  }
  std::vector<McFailingSample> failing;
  std::vector<McFailedSample> failed_records;
  bool decided = false;
  McStopReason reason = McStopReason::kCompleted;
  // Snapshot at the decision point: the early-stopped result is exactly
  // the committed prefix at the moment the rule fired, even though workers
  // may retire a few more in-flight ranges before they observe `stop`.
  std::size_t decided_completed = 0;
  std::size_t decided_passed = 0;
  std::size_t decided_failed = 0;
  RunningStats decided_stats;
  WeightedSums decided_wsums;
  std::vector<StratumCount> decided_strata;
  std::vector<McFailingSample> decided_failing;
  std::vector<McFailedSample> decided_failed_records;
  std::size_t last_checkpoint = 0;
  // Reasons of censored samples, keyed by index; written at evaluation
  // time (any worker), read at commit time. Failures are expected to be
  // rare, so a shared map beats an n-sized string array.
  std::mutex reasons_mu;
  std::map<std::size_t, std::string> reasons;
  std::atomic<std::size_t> retried_total{0};
  std::atomic<std::size_t> recovered_total{0};
  // Progress snapshots fire when the committed prefix crosses multiples of
  // progress_every, INSIDE the index-ordered fold — so the sequence of
  // snapshot contents (seq, counts, intervals) is a pure function of the
  // request, identical for any worker count. retried/restored are
  // accumulated over the committed prefix for the same reason: the racy
  // run-wide atomics above are for end-of-run telemetry only.
  std::size_t progress_seq = 0;
  std::size_t retried_committed = 0;
  std::size_t restored_committed = 0;
  const std::size_t progress_every =
      req.progress_every > 0 ? req.progress_every
                             : std::max<std::size_t>(1, win_n / 100);
  std::size_t next_progress = progress_every;

  auto emit_progress = [&] {
    McProgress p;
    p.seq = progress_seq++;
    p.completed = committed;
    p.total = win_n;
    p.passed = passed;
    p.failed = failed_committed;
    p.retried = retried_committed;
    if (yield_kind && committed > 0) {
      if (weighted && wsums.w > 0.0) {
        p.weighted = true;
        p.interval = self_normalized_interval(wsums);
        p.ess = wsums.ess();
      } else {
        p.interval =
            wilson_interval(passed, committed, failed_committed, req.censored);
      }
      p.ci_half_width = 0.5 * (p.interval.hi - p.interval.lo);
    }
    p.elapsed_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t_start)
            .count();
    const std::size_t executed = committed - restored_committed;
    if (p.elapsed_seconds > 0.0 && executed > 0) {
      p.samples_per_sec =
          static_cast<double>(executed) / p.elapsed_seconds;
      p.eta_seconds =
          static_cast<double>(win_n - committed) / p.samples_per_sec;
    }
    req.progress(p);
  };

  // Writes the checkpoint from the ranges retired so far (not just the
  // committed prefix: out-of-order stolen chunks are saved too).
  auto snapshot_checkpoint = [&] {
    const obs::TraceSpan span("mc.checkpoint");
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::uint8_t> snapshot = done;
    for (std::size_t r = 0; r < range_count; ++r) {
      if (range_done[r].load(std::memory_order_acquire)) {
        for (std::size_t i = ranges[r].lo; i < ranges[r].hi; ++i) {
          snapshot[i] = 1;
        }
      }
    }
    save_checkpoint(req.checkpoint_path, req.seed, n, kind, req.strategy,
                    snapshot, values, weights, status, attempts);
    c_ckpt_writes.inc();
    h_ckpt_seconds.observe(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count());
  };

  auto evaluate_stopping = [&] {
    if (!req.stopping.enabled() || decided ||
        committed < std::max<std::size_t>(1, req.stopping.min_samples)) {
      return;
    }
    c_stop_checks.inc();
    McStopReason fired = McStopReason::kCompleted;
    if (yield_kind) {
      // Censored samples enter the decision exactly as they enter the
      // final estimate. Under kExclude a fully-censored prefix carries no
      // information: no decision until an uncensored sample commits.
      if (req.censored == CensoredPolicy::kExclude &&
          committed == failed_committed) {
        return;
      }
      // The decision interval matches the strategy's estimator: the
      // self-normalized CI for importance runs, the post-stratified CI for
      // stratified runs (only once every stratum has a usable denominator
      // — a missing stratum means the prefix cannot bound the estimate),
      // pooled Wilson otherwise. LHS/Sobol use pooled Wilson too, which
      // IGNORES their variance reduction: a conservative, valid bound.
      ProportionInterval iv{0.0, 0.0, 0.0};
      if (weighted) {
        if (wsums.w <= 0.0) return;
        iv = self_normalized_interval(wsums, req.stopping.confidence_z);
      } else if (stratified) {
        for (const StratumCount& s : strata_tally) {
          const std::size_t denom = req.censored == CensoredPolicy::kExclude
                                        ? s.total - s.censored
                                        : s.total;
          if (denom == 0) return;
        }
        iv = post_stratified_interval(strata_tally, req.censored,
                                      req.stopping.confidence_z);
      } else {
        iv = wilson_interval(passed, committed, failed_committed,
                             req.censored, req.stopping.confidence_z);
      }
      const double half = 0.5 * (iv.hi - iv.lo);
      if (req.stopping.ci_half_width > 0.0 &&
          half <= req.stopping.ci_half_width) {
        fired = McStopReason::kCiTarget;
      } else if (req.stopping.yield_threshold >= 0.0) {
        if (iv.lo > req.stopping.yield_threshold) {
          fired = McStopReason::kThresholdPassed;
        } else if (iv.hi < req.stopping.yield_threshold) {
          fired = McStopReason::kThresholdFailed;
        }
      }
    } else if (req.stopping.ci_half_width > 0.0 && committed >= 2 &&
               metric_stats.mean_ci95_halfwidth() <=
                   req.stopping.ci_half_width) {
      fired = McStopReason::kCiTarget;
    }
    if (fired == McStopReason::kCompleted) return;
    c_early_stops.inc();
    obs::trace_instant("mc.early_stop", "committed",
                       static_cast<double>(committed));
    decided = true;
    reason = fired;
    decided_completed = committed;
    decided_passed = passed;
    decided_failed = failed_committed;
    decided_stats = metric_stats;
    decided_wsums = wsums;
    decided_strata = strata_tally;
    decided_failing = failing;
    decided_failed_records = failed_records;
    stop.store(true, std::memory_order_relaxed);
  };

  // Folds every newly contiguous retired range into the accumulators.
  // Called (under `mu`) by whichever worker retires a range.
  auto commit = [&] {
    std::lock_guard<std::mutex> lock(mu);
    while (committed_ranges < range_count &&
           range_done[committed_ranges].load(std::memory_order_acquire)) {
      const Range g = ranges[committed_ranges];
      for (std::size_t i = g.lo; i < g.hi; ++i) {
        const double v = values[i];
        // attempts[i] is final once its range retires, and a function of
        // the index alone — prefix-accumulated counts stay deterministic.
        if (attempts[i] > 1) {
          retried_committed += static_cast<std::size_t>(attempts[i]) - 1;
        }
        if (done[i]) ++restored_committed;
        if (status[i] != 0) {
          // Censored: the evaluation itself failed. Folded in per the
          // censored policy; the record list is capped but the count
          // is not.
          ++failed_committed;
          c_failed.inc();
          if (failed_records.size() < req.keep_failed_samples) {
            std::string why;
            {
              std::lock_guard<std::mutex> rlock(reasons_mu);
              const auto it = reasons.find(i);
              if (it != reasons.end()) why = it->second;
            }
            failed_records.push_back(
                {i, derive_seed(req.seed, {static_cast<std::uint64_t>(i)}),
                 static_cast<McFailureKind>(status[i]),
                 static_cast<int>(attempts[i]), std::move(why)});
          }
          if (yield_kind && req.censored == CensoredPolicy::kTreatAsFail) {
            metric_stats.add(0.0);
            // A censored sample never produced its likelihood ratio, so
            // treat-as-fail carries it at unit weight (log-weight 0) with
            // a 0 indicator (conservative: it can only pull the weighted
            // yield down); kExclude drops it from the weighted sums
            // entirely.
            if (weighted) wsums.add_log(0.0, 0.0);
          }
          if (stratified) {
            StratumCount& s = strata_tally[driver.stratum_of(i)];
            ++s.total;
            ++s.censored;
          }
          continue;
        }
        if (yield_kind) {
          if (v != 0.0) {
            ++passed;
          } else if (failing.size() < req.keep_failing_seeds) {
            failing.push_back(
                {i, derive_seed(req.seed, {static_cast<std::uint64_t>(i)})});
          }
          if (weighted) wsums.add_log(weights[i], v != 0.0 ? 1.0 : 0.0);
          if (stratified) {
            StratumCount& s = strata_tally[driver.stratum_of(i)];
            ++s.total;
            if (v != 0.0) ++s.passed;
          }
        }
        metric_stats.add(v);
      }
      committed += g.size();
      ++committed_ranges;
      // One snapshot per crossed threshold, before the stopping decision:
      // an early-stopped run's last snapshot is exactly the decision
      // prefix. Content depends only on the committed prefix, so the
      // emitted sequence is identical for any worker count.
      if (req.progress && committed >= next_progress) {
        emit_progress();
        while (next_progress <= committed) next_progress += progress_every;
      }
      evaluate_stopping();
      if (decided) break;
    }
    if (decided) return;
    if (!req.checkpoint_path.empty() && committed_ranges < range_count &&
        committed - last_checkpoint >=
            std::max<std::size_t>(1, req.checkpoint_every)) {
      last_checkpoint = committed;
      snapshot_checkpoint();
      if (req.on_checkpoint) req.on_checkpoint();
    }
  };

  // Evaluates sample i under the failure policy. Everything here is a
  // function of the sample index alone (derived seed, attempt numbering,
  // fault-rule matching via the published McSampleContext), so the outcome
  // — value or censoring — is identical for ANY worker count.
  const int max_attempts =
      req.failure_policy == McFailurePolicy::kRetryThenSkip
          ? 1 + std::max(0, req.max_retries)
          : 1;
  auto evaluate_sample = [&](std::size_t i) {
    for (int attempt = 0;; ++attempt) {
      McFailureKind fail_kind = McFailureKind::kNone;
      std::string why;
      const testing::ScopedMcSample scope(i, attempt);
      try {
        if (testing::fire(testing::FaultSite::kMcEvalThrowSingular)) {
          throw SingularMatrixError(
              "injected: singular matrix during sample evaluation");
        }
        if (testing::fire(testing::FaultSite::kMcEvalThrowConvergence)) {
          throw ConvergenceError(
              "injected: sample evaluation did not converge");
        }
        // Fresh point (and so fresh streams + unit weight) on every
        // attempt: the outcome is a function of the index alone.
        McSamplePoint point(driver, i);
        double v = eval(point);
        if (testing::fire(testing::FaultSite::kMcEvalNan)) {
          v = std::numeric_limits<double>::quiet_NaN();
        }
        if (std::isfinite(v) ||
            req.failure_policy == McFailurePolicy::kAbort) {
          // kAbort lets non-finite values flow through untouched: that is
          // the legacy behaviour the policy exists to preserve.
          values[i] = v;
          if (weighted) weights[i] = point.log_weight();
          attempts[i] = static_cast<std::uint8_t>(
              std::min(attempt + 1, 255));
          if (attempt > 0) {
            c_recovered.inc();
            recovered_total.fetch_add(1, std::memory_order_relaxed);
          }
          return;
        }
        fail_kind = McFailureKind::kNonFinite;
        why = "evaluation returned a non-finite value";
      } catch (const SingularMatrixError& e) {
        if (req.failure_policy == McFailurePolicy::kAbort) throw;
        fail_kind = McFailureKind::kSingular;
        why = e.what();
      } catch (const ConvergenceError& e) {
        if (req.failure_policy == McFailurePolicy::kAbort) throw;
        fail_kind = McFailureKind::kConvergence;
        why = e.what();
      } catch (const std::exception& e) {
        if (req.failure_policy == McFailurePolicy::kAbort) throw;
        fail_kind = McFailureKind::kOther;
        why = e.what();
      } catch (...) {
        if (req.failure_policy == McFailurePolicy::kAbort) throw;
        fail_kind = McFailureKind::kOther;
        why = "unknown non-standard exception";
      }
      if (attempt + 1 < max_attempts) {
        c_retries.inc();
        retried_total.fetch_add(1, std::memory_order_relaxed);
        obs::trace_instant("mc.sample_retry", "index",
                           static_cast<double>(i));
        continue;
      }
      status[i] = static_cast<std::uint8_t>(fail_kind);
      attempts[i] = static_cast<std::uint8_t>(std::min(attempt + 1, 255));
      values[i] = yield_kind ? 0.0
                             : std::numeric_limits<double>::quiet_NaN();
      std::lock_guard<std::mutex> rlock(reasons_mu);
      reasons.emplace(i, std::move(why));
      return;
    }
  };

  std::vector<McWorkerTelemetry> telemetry(workers);
  std::vector<std::exception_ptr> errors(workers);

  auto worker_body = [&](unsigned w) {
    obs::trace_set_thread_name("mc.worker/" + std::to_string(w));
    McWorkerTelemetry& tel = telemetry[w];
    tel.worker = w;
    const auto t0 = std::chrono::steady_clock::now();
    try {
      bool interrupted = false;
      for (;;) {
        std::size_t r;
        if (req.partition == McPartition::kStaticBlocks) {
          r = w;  // one pre-assigned block per worker, no stealing
          if (r >= range_count) break;
        } else {
          r = cursor.fetch_add(1, std::memory_order_relaxed);
          if (r >= range_count) break;
        }
        if (poll_cancel() || stop.load(std::memory_order_relaxed)) break;
        const Range g = ranges[r];
        const obs::TraceSpan chunk_span("mc.chunk", "lo",
                                        static_cast<double>(g.lo), "n",
                                        static_cast<double>(g.size()));
        std::int64_t evaluated = 0;
        // Batched fast path: hand the whole range to the evaluator when no
        // sample in it was already restored. Any exception or non-finite
        // result drops the range back to the per-sample path below (which
        // overwrites values[] unconditionally), so batched evaluators can
        // throw on a hard sample without losing the range. Note the
        // per-sample fault-injection sites are NOT visited on this path.
        bool range_batched = false;
        if (batch != nullptr && !poll_cancel()) {
          bool all_fresh = true;
          for (std::size_t i = g.lo; i < g.hi; ++i) {
            if (done[i]) {
              all_fresh = false;
              break;
            }
          }
          if (all_fresh) {
            const obs::TraceSpan batch_span("mc.batch", "lo",
                                            static_cast<double>(g.lo), "n",
                                            static_cast<double>(g.size()));
            try {
              (*batch)({w, g.lo, g.hi, values.data() + g.lo});
              range_batched = true;
              for (std::size_t i = g.lo; i < g.hi; ++i) {
                if (!std::isfinite(values[i])) {
                  range_batched = false;
                  break;
                }
              }
            } catch (...) {
              range_batched = false;
            }
            if (range_batched) {
              for (std::size_t i = g.lo; i < g.hi; ++i) attempts[i] = 1;
              evaluated = static_cast<std::int64_t>(g.size());
              tel.samples += static_cast<std::int64_t>(g.size());
              c_batched.inc(evaluated);
            }
          }
        }
        if (!range_batched) {
          for (std::size_t i = g.lo; i < g.hi; ++i) {
            if (poll_cancel() || stop.load(std::memory_order_relaxed)) {
              interrupted = true;  // range unfinished: do NOT retire it
              break;
            }
            if (!done[i]) {
              const obs::TraceSpan sample_span("mc.sample", "index",
                                               static_cast<double>(i));
              evaluate_sample(i);
              ++evaluated;
            }
            ++tel.samples;
          }
        }
        c_evaluated.inc(evaluated);
        if (interrupted) break;
        range_done[r].store(1, std::memory_order_release);
        ++tel.chunks;
        c_chunks.inc();
        // Every claim off the shared cursor is a potential steal; on a
        // full run the count equals the chunk count for ANY worker count,
        // which keeps it bit-identical across 1/4/8-thread runs.
        if (req.partition == McPartition::kWorkStealing) c_steals.inc();
        commit();
        if (req.partition == McPartition::kStaticBlocks) break;
      }
    } catch (...) {
      errors[w] = std::current_exception();
      stop.store(true, std::memory_order_relaxed);
    }
    tel.busy_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
  };

  if (workers <= 1) {
    worker_body(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) pool.emplace_back(worker_body, w);
    for (auto& t : pool) t.join();
  }

  // Persist whatever finished — on success, on early stop AND on failure,
  // so a killed run never redoes committed work.
  if (!req.checkpoint_path.empty()) snapshot_checkpoint();

  // EVERY worker exception lands in the telemetry (and so the manifest),
  // not just the one that gets rethrown: a run that died on four workers
  // at once used to report one error and lose the other three.
  std::exception_ptr first_error;
  for (unsigned w = 0; w < workers; ++w) {
    if (!errors[w]) continue;
    if (!first_error) first_error = errors[w];
    try {
      std::rethrow_exception(errors[w]);
    } catch (const std::exception& e) {
      result.run.worker_errors.push_back({w, e.what()});
    } catch (...) {
      result.run.worker_errors.push_back({w, "unknown non-standard exception"});
    }
  }

  const bool early = decided && !first_error;
  result.completed = early ? decided_completed : committed;
  // Priority: a worker error trumps everything; an early-stop rule that
  // fired before the cancel trumps the token; kCancelled only when the
  // token actually truncated the run (a cancel that lands after the last
  // sample committed is indistinguishable from completion, and reports so).
  result.run.stop_reason = first_error ? McStopReason::kAborted
                          : early      ? reason
                          : (cancelled.load(std::memory_order_relaxed) &&
                             result.completed < win_n)
                              ? McStopReason::kCancelled
                              : McStopReason::kCompleted;
  result.run.failing_samples = early ? std::move(decided_failing)
                                     : std::move(failing);
  result.run.failed_samples = early ? std::move(decided_failed_records)
                                    : std::move(failed_records);
  result.run.failed_total = early ? decided_failed : failed_committed;
  result.run.retried_total = retried_total.load(std::memory_order_relaxed);
  result.run.recovered_total =
      recovered_total.load(std::memory_order_relaxed);
  result.metric = early ? decided_stats : metric_stats;
  const std::size_t final_passed = early ? decided_passed : passed;
  const std::size_t final_failed = result.run.failed_total;
  if (yield_kind) {
    result.estimate.passed = final_passed;
    result.estimate.censored = final_failed;
    result.estimate.total = req.censored == CensoredPolicy::kExclude
                                ? result.completed - final_failed
                                : result.completed;
    if (result.estimate.total > 0) {
      result.estimate.interval = wilson_interval(
          final_passed, result.completed, final_failed, req.censored);
    }
    if (weighted) {
      const WeightedSums& final_wsums = early ? decided_wsums : wsums;
      result.weighted.enabled = true;
      result.weighted.sums = final_wsums;
      result.weighted.ess = final_wsums.ess();
      if (final_wsums.w > 0.0) {
        result.weighted.interval = self_normalized_interval(final_wsums);
        // The weighted estimator IS the run's yield estimate; the raw
        // counts above stay available for diagnostics.
        result.estimate.interval = result.weighted.interval;
      }
      static obs::Gauge& g_ess = obs::metrics().gauge("mc.ess");
      g_ess.set(result.weighted.ess);
    }
    if (stratified) {
      const std::vector<StratumCount>& final_strata =
          early ? decided_strata : strata_tally;
      bool all_usable = true;
      result.strata.reserve(final_strata.size());
      for (std::size_t k = 0; k < final_strata.size(); ++k) {
        const StratumCount& s = final_strata[k];
        McStratumResult row;
        row.index = static_cast<unsigned>(k);
        row.label = req.strategy.strata[k].label;
        row.weight = s.weight;
        row.samples = s.total;
        row.passed = s.passed;
        row.censored = s.censored;
        const std::size_t denom = req.censored == CensoredPolicy::kExclude
                                      ? s.total - s.censored
                                      : s.total;
        if (denom > 0) {
          row.interval =
              wilson_interval(s.passed, s.total, s.censored, req.censored);
        } else {
          all_usable = false;
        }
        result.strata.push_back(std::move(row));
        // Deterministic per-stratum work counters (final committed
        // tallies, not scheduling artifacts).
        const std::string prefix = "mc.stratum." + std::to_string(k);
        obs::metrics().counter(prefix + ".samples").inc(
            static_cast<std::int64_t>(s.total));
        obs::metrics().counter(prefix + ".passed").inc(
            static_cast<std::int64_t>(s.passed));
        obs::metrics().counter(prefix + ".censored").inc(
            static_cast<std::int64_t>(s.censored));
      }
      if (all_usable) {
        result.estimate.interval =
            post_stratified_interval(final_strata, req.censored);
      } else {
        // An (early-stopped or heavily censored) run can leave a stratum
        // with no usable samples; the pooled Wilson interval above is then
        // the best defined answer — keep it and say so.
        log_warn("stratified run has a stratum with no usable samples; "
                 "reporting the pooled Wilson interval instead of the "
                 "post-stratified estimate");
      }
    }
  }
  if (!yield_kind || req.keep_values) {
    // The committed prefix of a windowed run starts at win_lo: slice the
    // window's prefix out of the full-size array (win_lo == 0 unwindowed).
    values.erase(values.begin(),
                 values.begin() + static_cast<std::ptrdiff_t>(win_lo));
    values.resize(result.completed);
    result.values = std::move(values);
  }
  for (const McWorkerTelemetry& tel : telemetry) g_busy.add(tel.busy_seconds);
  result.run.workers = std::move(telemetry);
  result.run.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t_start)
          .count();

  // The manifest is written even for an aborted run — that is when the
  // worker_errors section matters most — BEFORE the rethrow below.
  if (!req.manifest_path.empty()) {
    mc_manifest(req, result).write(req.manifest_path);
  }
  // RELSIM_METRICS=<path>: refresh a cumulative metrics snapshot after
  // every run (last run wins; counters accumulate across runs).
  if (const char* path = std::getenv("RELSIM_METRICS");
      path != nullptr && *path != '\0') {
    obs::write_metrics_json(path);
  }
  if (first_error) std::rethrow_exception(first_error);
  return result;
}

}  // namespace

obs::RunManifest mc_manifest(const McRequest& req, const McResult& result) {
  obs::RunManifest m;
  m.kind = result.run.kind.empty() ? "mc" : result.run.kind;
  m.run = req.run_label.empty() ? "mc." + m.kind : req.run_label;
  m.seed = req.seed;
  m.threads_requested = req.threads;
  m.threads = result.run.threads;
  m.chunk = req.chunk;
  m.partition = req.partition == McPartition::kWorkStealing ? "work-stealing"
                                                            : "static-blocks";
  m.failure_policy = to_string(req.failure_policy);
  m.censored_policy = to_string(req.censored);
  m.strategy = to_string(req.strategy.kind);
  m.strategy_dimensions = req.strategy.dimensions;
  m.requested = result.requested;
  m.completed = result.completed;
  m.resumed = result.resumed;
  m.stop_reason = to_string(result.stop_reason());
  m.elapsed_seconds = result.elapsed_seconds();
  m.failed = result.run.failed_total;
  m.retried = result.run.retried_total;
  m.recovered = result.run.recovered_total;
  m.checkpoint_discarded = result.run.checkpoint_discarded;
  if (result.estimate.total > 0) {
    m.has_estimate = true;
    m.passed = result.estimate.passed;
    m.estimate_total = result.estimate.total;
    m.censored = result.estimate.censored;
    m.yield = result.estimate.yield();
    m.yield_lo = result.estimate.interval.lo;
    m.yield_hi = result.estimate.interval.hi;
  }
  if (result.weighted.enabled) {
    m.has_weighted = true;
    m.ess = result.weighted.ess;
    m.weight_sum = result.weighted.sums.w;
    m.weight_sum_sq = result.weighted.sums.w2;
    m.weight_log_scale = result.weighted.sums.log_scale;
    m.weighted_yield = result.weighted.interval.estimate;
    m.weighted_lo = result.weighted.interval.lo;
    m.weighted_hi = result.weighted.interval.hi;
  }
  m.strata.reserve(result.strata.size());
  for (const McStratumResult& s : result.strata) {
    m.strata.push_back({s.label, s.weight, s.samples, s.passed, s.censored,
                        s.interval.estimate, s.interval.lo, s.interval.hi});
  }
  m.workers.reserve(result.workers().size());
  for (const McWorkerTelemetry& w : result.workers()) {
    m.workers.push_back({w.worker, w.samples, w.chunks, w.busy_seconds});
  }
  m.failing_samples.reserve(result.failing_samples().size());
  for (const McFailingSample& f : result.failing_samples()) {
    m.failing_samples.push_back({f.index, f.seed});
  }
  m.failed_samples.reserve(result.failed_samples().size());
  for (const McFailedSample& f : result.failed_samples()) {
    m.failed_samples.push_back(
        {f.index, f.seed, to_string(f.kind), f.attempts, f.reason});
  }
  m.worker_errors.reserve(result.run.worker_errors.size());
  for (const McWorkerError& e : result.run.worker_errors) {
    m.worker_errors.push_back({e.worker, e.message});
  }
  m.metrics = obs::metrics().snapshot();
  return m;
}

McResult McSession::run_yield(const McPredicate& pass) const {
  RELSIM_REQUIRE(bool(pass), "McSession::run_yield needs a predicate");
  return run_session(request_, RunKind::kYield, [&pass](McSamplePoint& p) {
    return pass(p.rng(), p.index()) ? 1.0 : 0.0;
  });
}

McResult McSession::run_yield(const McPointPredicate& pass) const {
  RELSIM_REQUIRE(bool(pass), "McSession::run_yield needs a predicate");
  return run_session(request_, RunKind::kYield, [&pass](McSamplePoint& p) {
    return pass(p) ? 1.0 : 0.0;
  });
}

McResult McSession::run_yield_batch(const McBatchEval& batch,
                                    const McPredicate& scalar) const {
  RELSIM_REQUIRE(bool(batch),
                 "McSession::run_yield_batch needs a batched evaluator");
  RELSIM_REQUIRE(bool(scalar),
                 "McSession::run_yield_batch needs a scalar fallback");
  // Batched evaluators derive their own per-index streams; the tracked
  // inputs of the variance-reduction strategies would be silently ignored.
  RELSIM_REQUIRE(
      request_.strategy.kind == McSampleStrategy::kPseudoRandom,
      "McSession::run_yield_batch supports only the pseudo-random strategy");
  return run_session(
      request_, RunKind::kYield,
      [&scalar](McSamplePoint& p) {
        return scalar(p.rng(), p.index()) ? 1.0 : 0.0;
      },
      &batch);
}

McResult McSession::run_metric(const McMetric& metric) const {
  RELSIM_REQUIRE(bool(metric), "McSession::run_metric needs a metric");
  return run_session(request_, RunKind::kMetric, [&metric](McSamplePoint& p) {
    return metric(p.rng(), p.index());
  });
}

McResult McSession::run_metric(const McPointMetric& metric) const {
  RELSIM_REQUIRE(bool(metric), "McSession::run_metric needs a metric");
  return run_session(request_, RunKind::kMetric,
                     [&metric](McSamplePoint& p) { return metric(p); });
}

}  // namespace relsim
