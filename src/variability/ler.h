// Line-edge roughness (LER) — Sec. 2 of the paper: "line edge roughness is
// also becoming a serious yield threatening problem [11]" (Croon et al.).
//
// Model: the gate's two edges are rough lines with RMS amplitude `rms_nm`
// and correlation length `correlation_nm`. Averaged over the device width,
// the effective channel-length deviation has
//
//   sigma_Leff^2 = 2 * rms^2 * correlation / W        (W >> correlation)
//
// (two independent edges, W/corr independent segments each). The threshold
// impact comes through the short-channel VT roll-off
//
//   VT(L) = VT_long - rolloff_v * exp(-L / rolloff_length)
//
// so sigma_VT(LER) = |dVT/dL| * sigma_Leff. Unlike random dopant
// fluctuation (the Pelgrom A_VT term), this contribution explodes as L
// approaches the roll-off length — the "emerging" part of the threat. The
// same VT spread amplifies exponentially into the off-current spread
// through the subthreshold slope.
#pragma once

#include "tech/tech.h"
#include "variability/pelgrom.h"

namespace relsim {

struct LerParams {
  double rms_nm = 1.5;           ///< edge roughness RMS amplitude
  double correlation_nm = 25.0;  ///< edge correlation length
  double rolloff_v = 0.12;       ///< VT roll-off amplitude
  double rolloff_length_nm = 30.0;  ///< roll-off decay length l0
  double subthreshold_mv_per_dec = 90.0;  ///< for the Ioff amplification

  /// Typical values scaled from the node's feature size: the roll-off
  /// length tracks ~0.45x the minimum channel length.
  static LerParams from_tech(const TechNode& tech);
};

class LerModel {
 public:
  LerModel() : LerModel(LerParams{}) {}
  explicit LerModel(const LerParams& params);

  const LerParams& params() const { return params_; }

  /// Effective channel-length sigma (nm) for a device of width `w_um`.
  double sigma_leff_nm(double w_um) const;

  /// |dVT/dL| of the roll-off at channel length `l_um`, in V/nm.
  double dvt_dl_v_per_nm(double l_um) const;

  /// LER-induced VT sigma of a single device (volts).
  double sigma_vt(double w_um, double l_um) const;

  /// Combined single-device VT sigma: LER + Pelgrom (RDF et al.) in
  /// quadrature.
  double sigma_vt_combined(const PelgromModel& pelgrom, double w_um,
                           double l_um) const;

  /// Sigma of ln(Ioff/Ioff_nominal): the VT spread divided by the
  /// subthreshold slope, times ln 10. Large values mean the leakage tail
  /// dominates the yield loss.
  double sigma_ln_ioff(double w_um, double l_um) const;

 private:
  LerParams params_;
};

}  // namespace relsim
