// Unified Monte-Carlo orchestration: McSession / McRequest / McResult.
//
// Yield (Sec. 2 of the paper) is estimated by Monte-Carlo over virtual
// fabrications, and every yield bench spends most of its wall-clock there.
// McSession is the single entry point for those runs. It layers, on top of
// the per-sample seeding discipline of rng.h (sample i is always evaluated
// with Xoshiro256(derive_seed(seed, {i}))):
//
//  * a chunked work-stealing scheduler — workers claim fixed-size chunks
//    off an atomic cursor, so imbalanced samples (aged/failing ones cost
//    far more than fresh ones) no longer stall a static block partition;
//  * streaming accumulation — pass/fail counts and metric moments are
//    folded in *in sample-index order* as a contiguous prefix of chunks
//    retires, so every reported number is bit-identical for ANY thread
//    count, chunk size or partition mode;
//  * sequential early stopping — stop when the Wilson CI half-width drops
//    below a target, or as soon as a spec-yield threshold is decided at
//    the configured confidence. Decisions are made at committed-chunk
//    boundaries on the deterministic prefix, so an early-stopped run is
//    exactly the prefix of the full run;
//  * checkpoint/resume — {seed, completed-sample bitmap, per-sample
//    outcomes} are serialized so a killed 1M-sample run resumes without
//    redoing finished work, and resumes to the exact uninterrupted result.
//
// The request/result structs carry everything the divergent legacy entry
// points (estimate_yield_parallel / run_metric_parallel / the simulator
// facades) used to take positionally, plus per-worker timing telemetry and
// the seeds of the first K failing samples for replay.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "obs/manifest.h"
#include "rng/rng.h"
#include "stats/summary.h"
#include "variability/sample_strategy.h"

namespace relsim {

struct YieldEstimate {
  std::size_t passed = 0;
  /// Denominator of the estimate. Under CensoredPolicy::kTreatAsFail this
  /// includes the censored samples; under kExclude it does not.
  std::size_t total = 0;
  /// Samples whose evaluation FAILED (no pass/fail verdict), folded into
  /// the interval per the request's censored policy.
  std::size_t censored = 0;
  /// Wilson interval for plain/LHS/Sobol runs; the self-normalized
  /// weighted interval for importance runs; the post-stratified interval
  /// for stratified runs. passed/total always stay raw counts.
  ProportionInterval interval{0.0, 0.0, 0.0};

  double yield() const { return interval.estimate; }
};

/// Resolves a requested worker count: `requested` when > 0, otherwise the
/// RELSIM_THREADS environment override, otherwise hardware_concurrency()
/// (warning once and falling back to 4 when the hardware reports 0).
/// The environment is consulted on EVERY call — a long-running daemon
/// re-resolves per job, never once per process. `budget_cap` > 0 clamps
/// the result (including an explicit `requested`): that is how a service
/// enforces a per-request thread budget without restarting.
unsigned resolve_threads(unsigned requested, unsigned budget_cap = 0);

/// How sample indices are handed to workers.
enum class McPartition {
  kWorkStealing,  ///< chunks claimed off an atomic cursor (default)
  kStaticBlocks,  ///< one contiguous block per worker (legacy baseline)
};

/// Sequential early-stopping rule, evaluated on the committed sample prefix
/// at chunk boundaries. Disabled by default (all n samples run).
struct McStoppingRule {
  /// Stop once the Wilson CI half-width (yield runs) or the mean CI
  /// half-width (metric runs) is <= this. 0 disables the criterion.
  double ci_half_width = 0.0;
  /// Stop once the Wilson interval clears this yield threshold entirely
  /// (lo > threshold: passed; hi < threshold: failed). Negative disables.
  /// Yield runs only.
  double yield_threshold = -1.0;
  /// z-score of the decision confidence (default ~95%).
  double confidence_z = 1.959963984540054;
  /// Never decide before this many samples are committed.
  std::size_t min_samples = 64;

  bool enabled() const { return ci_half_width > 0.0 || yield_threshold >= 0.0; }
};

enum class McStopReason {
  kCompleted,        ///< all requested samples ran
  kCiTarget,         ///< confidence-interval half-width target reached
  kThresholdPassed,  ///< yield decided above the spec threshold
  kThresholdFailed,  ///< yield decided below the spec threshold
  kAborted,          ///< a worker exception ended the run (kAbort policy)
  kCancelled,        ///< the McRequest::cancel token fired mid-run
};

const char* to_string(McStopReason reason);

/// How ReliabilitySimulator::run_yield evaluates samples (carried on the
/// request so a service can select the path per job).
enum class McEvalMode : std::uint8_t {
  /// Batched (compiled-circuit lockstep) when the spec provides a
  /// DC-solution predicate AND the strategy is plain pseudo-random;
  /// classic per-sample otherwise.
  kAuto = 0,
  /// Always the classic build-vary-solve-per-sample path.
  kPerSample = 1,
  /// Require the batched path; throws when the spec or strategy is not
  /// batch-eligible instead of silently degrading.
  kBatched = 2,
};

const char* to_string(McEvalMode mode);

/// What to do when evaluating ONE sample throws (or, for metric runs,
/// returns a non-finite value).
enum class McFailurePolicy {
  /// Stop the run and rethrow on the caller's thread — the exact legacy
  /// behaviour, and the default. Committed progress is checkpointed and
  /// (new) the manifest is still written with every worker error in it.
  kAbort,
  /// Record the failure (index, replay seed, kind, reason) and keep going;
  /// the sample is carried as *censored* into the yield statistics.
  kSkip,
  /// Re-evaluate the sample up to McRequest::max_retries more times (fresh
  /// RNG, same derived seed, attempt number published to the fault-injection
  /// context and to the solver escalation hooks), then skip as above.
  kRetryThenSkip,
};

const char* to_string(McFailurePolicy policy);

/// Failure classification of a censored sample, derived from the exception
/// type that ended its last evaluation attempt.
enum class McFailureKind : std::uint8_t {
  kNone = 0,
  kConvergence = 1,  ///< relsim::ConvergenceError
  kSingular = 2,     ///< relsim::SingularMatrixError
  kNonFinite = 3,    ///< the evaluation returned NaN/±Inf
  kOther = 4,        ///< any other std::exception (or unknown throw)
};

const char* to_string(McFailureKind kind);

/// How a checkpoint that fails its integrity check (bad magic/version, CRC
/// mismatch, truncation, bitmap/count disagreement) is handled on load.
/// A checkpoint whose header does not match the request (different seed,
/// sample count or run kind) always throws: that is a caller error, not
/// data corruption.
enum class McCheckpointRecovery {
  kThrow,           ///< refuse to run (default)
  kDiscardCorrupt,  ///< warn, delete nothing, restart from zero samples
};

/// One live-progress snapshot, published at deterministic chunk-commit
/// boundaries: the k-th snapshot of a run fires when the committed prefix
/// first reaches k * progress_every samples, and every field except the
/// wall-clock block below is derived from that prefix alone. Contract:
/// for a fixed request {seed, n, chunk, strategy, ...} the SEQUENCE of
/// snapshot contents is bit-identical for any worker count — the
/// telemetry substrate the sharding coordinator's straggler logic needs.
struct McProgress {
  std::size_t seq = 0;        ///< 0-based snapshot number within the run
  std::size_t completed = 0;  ///< committed samples so far
  std::size_t total = 0;      ///< requested sample count
  std::size_t passed = 0;     ///< passes among committed (yield runs)
  std::size_t failed = 0;     ///< censored samples among committed
  /// Retry attempts spent on committed samples (kRetryThenSkip). Counted
  /// over the committed prefix — NOT the racy run-wide retry counter — so
  /// it obeys the determinism contract.
  std::size_t retried = 0;
  /// Current estimate: the self-normalized weighted interval for
  /// importance runs (weighted == true), pooled Wilson otherwise.
  ProportionInterval interval{0.0, 0.0, 0.0};
  double ci_half_width = 0.0;
  bool weighted = false;
  double ess = 0.0;  ///< Kish ESS of the committed prefix (weighted runs)
  // -- Wall-clock fields: EXCLUDED from the determinism contract. --------
  double elapsed_seconds = 0.0;
  /// Evaluation rate over samples actually executed this run (checkpoint-
  /// restored samples are not counted as work done).
  double samples_per_sec = 0.0;
  double eta_seconds = 0.0;  ///< 0 when the rate is not yet measurable
};

/// Everything a Monte-Carlo run needs, in one struct.
struct McRequest {
  std::uint64_t seed = 0;  ///< base seed; sample i uses derive_seed(seed,{i})
  std::size_t n = 0;       ///< requested sample count
  unsigned threads = 0;    ///< worker count; 0 = resolve_threads() auto
  /// Per-request thread budget: > 0 caps the resolved worker count even
  /// when `threads` asks for more. A multi-tenant daemon sets this per job
  /// so one request cannot grab the whole machine.
  unsigned thread_budget = 0;
  std::size_t chunk = 32;  ///< samples per work-stealing chunk
  /// Shard window [shard_lo, shard_hi): when shard_hi > 0 the run
  /// evaluates ONLY the samples in this half-open GLOBAL index range —
  /// per-sample seeds, strategy inputs and checkpoint layout stay those
  /// of the full n-sample run, so disjoint windows executed by separate
  /// processes produce partial checkpoints that merge_checkpoints()
  /// reassembles bit-identically (see shard.h). shard_hi == 0 (default)
  /// runs the whole range. Windowed runs report window-local counts
  /// (requested/completed/progress cover the window) and reject early-
  /// stopping rules, whose semantics are whole-run.
  std::size_t shard_lo = 0;
  std::size_t shard_hi = 0;
  McPartition partition = McPartition::kWorkStealing;
  /// Evaluation-path selection for ReliabilitySimulator::run_yield (the
  /// session itself is told the path by which entry point is called).
  McEvalMode eval_mode = McEvalMode::kAuto;
  McStoppingRule stopping;
  /// Variance-reduction sampling strategy (default: plain pseudo-random,
  /// the exact PR-2 draw stream). Strategies only change how per-sample
  /// inputs are produced — scheduling, commit order and all determinism
  /// invariants are untouched. kStratified / kImportance are yield-run
  /// strategies (their estimators are proportion estimators); kImportance
  /// feeds its self-normalized CI to the early-stopping rule, kStratified
  /// its post-stratified CI. See sample_strategy.h.
  SampleStrategyConfig strategy;
  /// What to do when a sample evaluation throws. kAbort reproduces the
  /// legacy stop-and-rethrow behaviour bit-for-bit; kSkip/kRetryThenSkip
  /// censor the sample and keep the run alive. Surviving samples are
  /// bit-identical across policies and worker counts.
  McFailurePolicy failure_policy = McFailurePolicy::kAbort;
  /// Extra evaluation attempts per sample under kRetryThenSkip.
  int max_retries = 2;
  /// How censored samples enter the yield estimate and the early-stopping
  /// decisions (see stats/summary.h).
  CensoredPolicy censored = CensoredPolicy::kTreatAsFail;
  /// Full failure records (kind, attempts, reason) kept in McResult for
  /// the first K censored samples in index order; the TOTAL count is
  /// always reported in run.failed_total even when the list is capped.
  std::size_t keep_failed_samples = 256;
  /// Non-empty enables checkpointing: progress is serialized here every
  /// `checkpoint_every` committed samples (atomically: tmp file + rename)
  /// and once more when the run ends or a worker throws. An existing file
  /// written for the same {seed, n, run kind, sampling strategy} is loaded
  /// before the run and its samples are not re-evaluated; a mismatched
  /// file (including a strategy mismatch) throws. Integrity
  /// is protected by a CRC-32 over the whole image; what happens when the
  /// check fails is `checkpoint_recovery`'s call.
  std::string checkpoint_path;
  std::size_t checkpoint_every = 4096;
  McCheckpointRecovery checkpoint_recovery = McCheckpointRecovery::kThrow;
  /// Seeds of the first K failing samples (index order) kept for replay.
  std::size_t keep_failing_seeds = 8;
  /// Retain the per-sample 0/1 outcomes of a yield run in McResult::values
  /// (metric runs always retain their values).
  bool keep_values = false;
  /// Progress callback cadence in committed samples (0 = auto: ~1% of n).
  std::size_t progress_every = 0;
  /// Called under the commit lock whenever the committed prefix crosses a
  /// progress_every threshold (see McProgress for the determinism
  /// contract). Keep it cheap — it runs on whichever worker commits.
  std::function<void(const McProgress&)> progress;
  /// Called (under the commit lock) right after each MID-RUN checkpoint
  /// write — the hook a daemon uses to surface "checkpointed" lifecycle
  /// events. The final end-of-run checkpoint does not fire it.
  std::function<void()> on_checkpoint;
  /// Cooperative cancellation token, polled by every worker between
  /// samples and before each range claim. Must be safe to call from any
  /// worker thread (an atomic-flag read is the intended shape). Once it
  /// returns true the run stops exactly like an early stop: the committed
  /// prefix is the result, the checkpoint (when configured) is written, and
  /// stop_reason() reports kCancelled — so a cancelled job is resumable.
  std::function<bool()> cancel;
  /// Label used in the run manifest and trace (default: "mc.yield" /
  /// "mc.metric"; ReliabilitySimulator sets its facade names).
  std::string run_label;
  /// Non-empty: a run manifest (seed, config, stop reason, telemetry,
  /// build info, metrics snapshot) is written here when the run ends.
  std::string manifest_path;
};

/// Seed of a failing sample: re-run it in isolation with Xoshiro256(seed).
struct McFailingSample {
  std::size_t index = 0;
  std::uint64_t seed = 0;
};

/// A censored sample: its evaluation failed (every attempt) under
/// kSkip/kRetryThenSkip. `seed` replays it in isolation.
struct McFailedSample {
  std::size_t index = 0;
  std::uint64_t seed = 0;
  McFailureKind kind = McFailureKind::kNone;
  int attempts = 0;     ///< evaluation attempts spent (>= 1)
  std::string reason;   ///< what() of the last attempt's exception
};

/// One worker exception of an aborted run.
struct McWorkerError {
  unsigned worker = 0;
  std::string message;
};

struct McWorkerTelemetry {
  unsigned worker = 0;
  std::size_t samples = 0;  ///< samples this worker evaluated or replayed
  std::size_t chunks = 0;   ///< chunks this worker retired
  double busy_seconds = 0.0;
};

/// How a run ended and where its wall-clock went. One struct, one source
/// of truth: it feeds the run manifest verbatim, and McResult exposes its
/// fields through compatibility accessors.
struct McRunTelemetry {
  McStopReason stop_reason = McStopReason::kCompleted;
  std::string kind;      ///< "yield" | "metric"
  unsigned threads = 0;  ///< resolved worker count actually used
  std::vector<McFailingSample> failing_samples;
  /// First keep_failed_samples censored samples, in index order.
  std::vector<McFailedSample> failed_samples;
  std::size_t failed_total = 0;     ///< ALL censored samples (list is capped)
  std::size_t retried_total = 0;    ///< retry attempts spent (all samples)
  std::size_t recovered_total = 0;  ///< samples that succeeded on a retry
  /// All worker exceptions of an aborted run (kAbort), recorded in the
  /// manifest before the first one is rethrown.
  std::vector<McWorkerError> worker_errors;
  bool checkpoint_discarded = false;  ///< a corrupt checkpoint was dropped
  std::vector<McWorkerTelemetry> workers;
  double elapsed_seconds = 0.0;
};

/// Per-stratum outcome of a stratified yield run (committed prefix).
struct McStratumResult {
  unsigned index = 0;
  std::string label;
  double weight = 0.0;        ///< declared probability mass W_k
  std::size_t samples = 0;    ///< committed samples allocated to the stratum
  std::size_t passed = 0;     ///< uncensored passes
  std::size_t censored = 0;   ///< censored samples in the stratum
  /// Per-stratum Wilson interval (censoring folded in per the request's
  /// policy); {0,0,0} when the stratum has no usable denominator.
  ProportionInterval interval{0.0, 0.0, 0.0};
};

/// Weighted-estimator state of an importance-sampling yield run.
struct McWeightedEstimate {
  bool enabled = false;
  /// Committed-prefix power sums of (weight, pass indicator).
  WeightedSums sums;
  /// Kish effective sample size (sums.ess()); a small ESS relative to the
  /// sample count means the proposal shift is too aggressive and the CI
  /// below is not trustworthy.
  double ess = 0.0;
  /// Self-normalized estimate with its delta-method CI (also surfaced as
  /// McResult::estimate.interval).
  ProportionInterval interval{0.0, 0.0, 0.0};
};

struct McResult {
  /// Pass/fail summary over the completed prefix (yield runs; metric runs
  /// leave total == 0).
  YieldEstimate estimate;
  /// Stratified yield runs: per-stratum tallies and Wilson intervals, in
  /// declaration order. Empty for every other strategy.
  std::vector<McStratumResult> strata;
  /// Importance yield runs: weighted estimator + ESS diagnostics.
  McWeightedEstimate weighted;
  /// Streaming metric moments over the completed prefix (metric runs).
  RunningStats metric;
  /// Per-sample outcomes for samples [0, completed): metric values, or 0/1
  /// pass flags when McRequest::keep_values was set on a yield run.
  /// Censored samples hold NaN in metric runs (JSON renders them null) and
  /// 0 in yield runs; run.failed_samples says which indices those are.
  std::vector<double> values;
  std::size_t requested = 0;  ///< McRequest::n
  std::size_t completed = 0;  ///< samples covered by estimate/metric
  std::size_t resumed = 0;    ///< samples restored from the checkpoint
  /// Orchestration telemetry (manifest source).
  McRunTelemetry run;

  // Accessors kept for compatibility with the former public fields.
  McStopReason stop_reason() const { return run.stop_reason; }
  const std::vector<McFailingSample>& failing_samples() const {
    return run.failing_samples;
  }
  const std::vector<McFailedSample>& failed_samples() const {
    return run.failed_samples;
  }
  const std::vector<McWorkerTelemetry>& workers() const {
    return run.workers;
  }
  double elapsed_seconds() const { return run.elapsed_seconds; }
};

/// Builds the manifest of a finished run (config from `req`, outcome and
/// telemetry from `result`, metrics from the global registry). McSession
/// writes this automatically when McRequest::manifest_path is set.
obs::RunManifest mc_manifest(const McRequest& req, const McResult& result);

using McPredicate = std::function<bool(Xoshiro256&, std::size_t)>;
using McMetric = std::function<double(Xoshiro256&, std::size_t)>;
/// Strategy-aware callbacks: the point view exposes the strategy's tracked
/// inputs (uniform/normal per dimension) plus the plain sample stream.
using McPointPredicate = std::function<bool(McSamplePoint&)>;
using McPointMetric = std::function<double(McSamplePoint&)>;

/// One contiguous index range handed to a batched evaluator: samples
/// [lo, hi), with values[i - lo] to fill per sample (0/1 for yield runs).
/// `worker` identifies the calling worker so the evaluator can use
/// worker-private state (e.g. a CompiledCircuit workspace) without locks.
struct McBatchSpan {
  unsigned worker = 0;
  std::size_t lo = 0;
  std::size_t hi = 0;
  double* values = nullptr;
};

/// Batched evaluator: fills every value in the span, or throws to make the
/// scheduler fall back to the per-sample path for that span. Results MUST
/// be a pure function of the sample index (not of the span grouping), or
/// determinism across thread counts is lost.
using McBatchEval = std::function<void(const McBatchSpan&)>;

/// One Monte-Carlo run, configured by an McRequest.
///
/// The evaluation function must be safe to call concurrently on DISTINCT
/// sample indices (true for anything that builds its circuit per sample);
/// within one run it is only ever re-invoked for the same index by the
/// kRetryThenSkip retry ladder. What an exception from it does is the
/// failure policy's call: under kAbort (default) the run stops, progress
/// is checkpointed, every worker error lands in the manifest and the first
/// is rethrown on the caller's thread; under kSkip/kRetryThenSkip the
/// sample is censored and the run continues — surviving-sample results are
/// bit-identical to a run where the failed samples never existed, for any
/// worker count.
class McSession {
 public:
  explicit McSession(McRequest request) : request_(std::move(request)) {}

  const McRequest& request() const { return request_; }

  /// RNG for sample `index` (fresh, decorrelated stream).
  Xoshiro256 rng_for(std::size_t index) const {
    return Xoshiro256(
        derive_seed(request_.seed, {static_cast<std::uint64_t>(index)}));
  }

  /// Pass/fail run: McResult::estimate carries the Wilson yield estimate.
  /// A legacy (rng, index) predicate receives the plain sample stream and
  /// is bit-compatible with PR-2 regardless of the configured strategy
  /// (tracked inputs it never asks for are simply not drawn).
  McResult run_yield(const McPredicate& pass) const;

  /// Strategy-aware pass/fail run: the predicate draws its random inputs
  /// through the McSamplePoint view, so LHS/Sobol/stratified/importance
  /// inputs reach the model. Required for any strategy to actually bite.
  McResult run_yield(const McPointPredicate& pass) const;

  /// Batched pass/fail run: whole chunks go to `batch` (one call per work
  /// range); `scalar` is the per-sample fallback used for ranges the
  /// batched evaluator throws on, for retried samples, and for any range
  /// partially restored from a checkpoint. Restricted to the kPseudoRandom
  /// strategy: batched evaluators draw their own per-index streams and
  /// cannot see strategy-tracked inputs. Results are identical to
  /// run_yield(scalar) as long as batch and scalar agree per index.
  McResult run_yield_batch(const McBatchEval& batch,
                           const McPredicate& scalar) const;

  /// Metric run: McResult::metric and McResult::values carry the samples.
  McResult run_metric(const McMetric& metric) const;

  /// Strategy-aware metric run (kPseudoRandom / kLatinHypercube / kSobol;
  /// the stratified and importance estimators are yield-only).
  McResult run_metric(const McPointMetric& metric) const;

 private:
  McRequest request_;
};

}  // namespace relsim
