// Distributed sharding substrate: contiguous index-range shard plans and
// the deterministic merge of per-shard partial checkpoints.
//
// The sample-index-ordered commit discipline makes a Monte-Carlo run a
// pure function of {request}: sample i's value never depends on which
// process, worker or attempt evaluated it. A run over [0, n) can
// therefore be split into contiguous shards, each executed by a separate
// process as a WINDOWED run (McRequest::shard_lo/shard_hi) writing a
// full-size RSMCKPT4 checkpoint whose done bits lie inside its window.
// Merging the shard checkpoints is a union of disjoint bitmaps — and
// resuming a full (non-windowed) run from the merged image reassembles
// the exact single-process result, evaluating in-process any samples the
// shards did not finish (the graceful-degradation path when workers are
// lost).
//
// Merge invariants, enforced here:
//   * every part must describe the SAME run (seed, n, run kind, strategy
//     kind + digest, weight presence) — anything else throws;
//   * done bitmaps must be disjoint — an overlap means two shards claimed
//     the same sample and the plan or coordinator is broken, so the merge
//     refuses rather than silently preferring one side;
//   * values/status/attempts/weights are copied only for done samples, so
//     the merged image is bit-identical to what one process would have
//     checkpointed after completing the union of the windows.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "variability/mc_checkpoint.h"

namespace relsim {

/// One shard of a run: samples [lo, hi) plus the checkpoint file its
/// worker writes. Shards of one plan are contiguous, disjoint and cover
/// [0, n) in index order.
struct McShard {
  std::size_t index = 0;
  std::size_t lo = 0;
  std::size_t hi = 0;
  std::string checkpoint_path;

  std::size_t size() const { return hi - lo; }
};

/// Splits [0, n) into at most `shards` contiguous shards with boundaries
/// aligned to `chunk` (so no work-stealing chunk straddles two shards and
/// batched evaluators see the same spans a single process would). Shards
/// are balanced to within one chunk; fewer shards are returned when n is
/// too small to populate all of them. Each shard's checkpoint_path is
/// `<prefix>.shard<index>.rsmckpt` (empty prefix leaves paths empty).
std::vector<McShard> make_shard_plan(std::size_t n, std::size_t shards,
                                     std::size_t chunk,
                                     const std::string& checkpoint_prefix);

struct McCheckpointMergeStats {
  std::size_t parts_found = 0;    ///< input files that existed and loaded
  std::size_t parts_missing = 0;  ///< inputs with no file (empty shards)
  std::size_t samples = 0;        ///< done samples in the merged image
  bool has_weights = false;
};

/// Merges partial checkpoints into one image at `out_path`. Parts that do
/// not exist are skipped (an empty shard merges as identity); corrupt
/// parts throw McCheckpointCorruptError; parts describing a different run
/// or overlapping an earlier part throw Error. At least one part must
/// exist. Merging a single part writes a byte-identical copy of it.
McCheckpointMergeStats merge_checkpoints(const std::vector<std::string>& parts,
                                         const std::string& out_path);

}  // namespace relsim
