// Global (inter-die) process corners.
//
// The Pelgrom model covers *local* mismatch between neighbouring devices;
// corner analysis covers the *global* die-to-die shift every device on a
// die shares (Sec. 2's "systematic and random errors" at die granularity).
// Corners are the classic k-sigma extremes of the global distribution:
// SS/FF move both device types together, SF/FS split them — the worst case
// for ratioed logic and analog stages that rely on n/p balance.
#pragma once

#include <string>

#include "rng/rng.h"

namespace relsim {

enum class ProcessCorner {
  kTypical,   ///< TT
  kSlowSlow,  ///< SS: both types high VT / low beta
  kFastFast,  ///< FF
  kSlowFast,  ///< SF: slow nMOS, fast pMOS
  kFastSlow,  ///< FS
};

const char* corner_name(ProcessCorner corner);

/// Per-die global shift applied to every device of a type. dvt shifts add
/// to vt0 with the convention: positive nmos_dvt raises the nMOS VT;
/// positive pmos_dvt makes the pMOS VT more negative (both "slow").
struct GlobalShift {
  double nmos_dvt = 0.0;
  double pmos_dvt = 0.0;
  double nmos_dbeta_rel = 0.0;
  double pmos_dbeta_rel = 0.0;
};

struct CornerParams {
  double sigma_vt_global_v = 0.02;      ///< 1-sigma global VT spread
  double sigma_beta_global_rel = 0.04;  ///< 1-sigma global beta spread
  double k_sigma = 3.0;                 ///< corner distance
};

class CornerModel {
 public:
  CornerModel() : CornerModel(CornerParams{}) {}
  explicit CornerModel(const CornerParams& params);

  const CornerParams& params() const { return params_; }

  /// Deterministic shift of a named corner.
  GlobalShift shift(ProcessCorner corner) const;

  /// Samples a random die's global shift (Monte-Carlo over dies); nMOS and
  /// pMOS shifts are partially correlated through a shared process term.
  GlobalShift sample(Xoshiro256& rng, double np_correlation = 0.6) const;

 private:
  CornerParams params_;
};

}  // namespace relsim
