#include "variability/corners.h"

#include <cmath>

#include "rng/distributions.h"
#include "util/error.h"

namespace relsim {

const char* corner_name(ProcessCorner corner) {
  switch (corner) {
    case ProcessCorner::kTypical:
      return "TT";
    case ProcessCorner::kSlowSlow:
      return "SS";
    case ProcessCorner::kFastFast:
      return "FF";
    case ProcessCorner::kSlowFast:
      return "SF";
    case ProcessCorner::kFastSlow:
      return "FS";
  }
  return "?";
}

CornerModel::CornerModel(const CornerParams& params) : params_(params) {
  RELSIM_REQUIRE(params.sigma_vt_global_v >= 0.0,
                 "global VT sigma must be non-negative");
  RELSIM_REQUIRE(params.sigma_beta_global_rel >= 0.0,
                 "global beta sigma must be non-negative");
  RELSIM_REQUIRE(params.k_sigma > 0.0, "k-sigma must be positive");
}

GlobalShift CornerModel::shift(ProcessCorner corner) const {
  const double dvt = params_.k_sigma * params_.sigma_vt_global_v;
  const double dbeta = params_.k_sigma * params_.sigma_beta_global_rel;
  GlobalShift s;
  auto slow_n = [&] {
    s.nmos_dvt = dvt;
    s.nmos_dbeta_rel = -dbeta;
  };
  auto fast_n = [&] {
    s.nmos_dvt = -dvt;
    s.nmos_dbeta_rel = dbeta;
  };
  auto slow_p = [&] {
    s.pmos_dvt = dvt;
    s.pmos_dbeta_rel = -dbeta;
  };
  auto fast_p = [&] {
    s.pmos_dvt = -dvt;
    s.pmos_dbeta_rel = dbeta;
  };
  switch (corner) {
    case ProcessCorner::kTypical:
      break;
    case ProcessCorner::kSlowSlow:
      slow_n();
      slow_p();
      break;
    case ProcessCorner::kFastFast:
      fast_n();
      fast_p();
      break;
    case ProcessCorner::kSlowFast:
      slow_n();
      fast_p();
      break;
    case ProcessCorner::kFastSlow:
      fast_n();
      slow_p();
      break;
  }
  return s;
}

GlobalShift CornerModel::sample(Xoshiro256& rng, double np_correlation) const {
  RELSIM_REQUIRE(np_correlation >= -1.0 && np_correlation <= 1.0,
                 "correlation must be in [-1,1]");
  const NormalDistribution unit(0.0, 1.0);
  // Shared process term + per-type residuals.
  const double shared = unit(rng);
  const double rn = unit(rng);
  const double rp = unit(rng);
  const double c = np_correlation;
  const double zr = std::sqrt(std::max(0.0, 1.0 - c * c));
  const double zn = c * shared + zr * rn;
  const double zp = c * shared + zr * rp;
  GlobalShift s;
  s.nmos_dvt = zn * params_.sigma_vt_global_v;
  s.pmos_dvt = zp * params_.sigma_vt_global_v;
  // Beta moves opposite to VT within a type (slow = high VT + low beta).
  s.nmos_dbeta_rel = -zn * params_.sigma_beta_global_rel;
  s.pmos_dbeta_rel = -zp * params_.sigma_beta_global_rel;
  return s;
}

}  // namespace relsim
