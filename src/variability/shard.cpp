#include "variability/shard.h"

#include <algorithm>

#include "obs/metrics.h"
#include "util/error.h"

namespace relsim {

std::vector<McShard> make_shard_plan(std::size_t n, std::size_t shards,
                                     std::size_t chunk,
                                     const std::string& checkpoint_prefix) {
  RELSIM_REQUIRE(shards > 0, "a shard plan needs at least one shard");
  std::vector<McShard> plan;
  if (n == 0) return plan;
  const std::size_t c = std::max<std::size_t>(1, chunk);
  // Deal whole chunks, not samples: boundary k sits at chunk granularity,
  // so every shard window is a run of complete work-stealing chunks (the
  // last may be short when n is not a chunk multiple).
  const std::size_t total_chunks = (n + c - 1) / c;
  const std::size_t s_count = std::min(shards, total_chunks);
  for (std::size_t s = 0; s < s_count; ++s) {
    McShard shard;
    shard.lo = (total_chunks * s / s_count) * c;
    shard.hi = std::min((total_chunks * (s + 1) / s_count) * c, n);
    if (shard.hi <= shard.lo) continue;
    shard.index = plan.size();
    if (!checkpoint_prefix.empty()) {
      shard.checkpoint_path = checkpoint_prefix + ".shard" +
                              std::to_string(shard.index) + ".rsmckpt";
    }
    plan.push_back(std::move(shard));
  }
  return plan;
}

McCheckpointMergeStats merge_checkpoints(const std::vector<std::string>& parts,
                                         const std::string& out_path) {
  RELSIM_REQUIRE(!parts.empty(), "merge_checkpoints needs input parts");
  RELSIM_REQUIRE(!out_path.empty(), "merge_checkpoints needs an output path");
  static obs::Counter& c_merges =
      obs::metrics().counter("mc.checkpoint_merges");
  static obs::Counter& c_merged_samples =
      obs::metrics().counter("mc.checkpoint_merge_samples");

  McCheckpointMergeStats stats;
  McCheckpointImage merged;
  bool have_base = false;
  for (const std::string& path : parts) {
    McCheckpointImage part;
    if (!load_checkpoint_image(path, part)) {
      ++stats.parts_missing;
      continue;
    }
    ++stats.parts_found;
    if (!have_base) {
      merged = std::move(part);
      have_base = true;
      continue;
    }
    RELSIM_REQUIRE(
        merged.same_run(part),
        "checkpoint merge parts describe different runs (seed, sample "
        "count, run kind, sampling strategy or weight presence): " + path);
    const std::size_t n = static_cast<std::size_t>(merged.n);
    for (std::size_t i = 0; i < n; ++i) {
      if (!part.done[i]) continue;
      RELSIM_REQUIRE(!merged.done[i],
                     "checkpoint merge parts overlap at sample " +
                         std::to_string(i) + ": " + path);
      merged.done[i] = 1;
      merged.status[i] = part.status[i];
      merged.attempts[i] = part.attempts[i];
      merged.values[i] = part.values[i];
      if (merged.has_weights()) merged.weights[i] = part.weights[i];
    }
  }
  RELSIM_REQUIRE(have_base,
                 "merge_checkpoints found no existing checkpoint part "
                 "(all inputs missing)");
  stats.samples = merged.done_count();
  stats.has_weights = merged.has_weights();
  save_checkpoint_image(out_path, merged);
  c_merges.inc();
  c_merged_samples.inc(static_cast<std::int64_t>(stats.samples));
  return stats;
}

}  // namespace relsim
