// Sampling device-level mismatch from the Pelgrom model.
#pragma once

#include <utility>

#include "rng/distributions.h"
#include "variability/pelgrom.h"

namespace relsim {

/// One device's sampled deviation from its nominal parameters.
struct MismatchSample {
  double dvt = 0.0;        ///< signed VT deviation, V
  double dbeta_rel = 0.0;  ///< signed relative beta deviation
};

/// Draws per-device and matched-pair mismatch for devices of a fixed
/// geometry. Pair sampling splits the local (area) component independently
/// per device and the distance gradient antisymmetrically, so the pair
/// difference reproduces sigma_dvt_pair exactly.
class MismatchSampler {
 public:
  MismatchSampler(const PelgromModel& model, double w_um, double l_um);

  /// Deviation of a single device from nominal.
  MismatchSample sample_single(Xoshiro256& rng) const;

  /// A matched pair at mutual distance `distance_um`.
  std::pair<MismatchSample, MismatchSample> sample_pair(
      Xoshiro256& rng, double distance_um = 0.0) const;

  double w_um() const { return w_um_; }
  double l_um() const { return l_um_; }
  const PelgromModel& model() const { return model_; }

 private:
  PelgromModel model_;
  double w_um_;
  double l_um_;
};

}  // namespace relsim
