#include "variability/pelgrom.h"

#include <cmath>

#include "util/error.h"

namespace relsim {

PelgromParams PelgromParams::from_tech(const TechNode& tech) {
  PelgromParams p;
  p.avt_mv_um = tech.avt_mv_um;
  p.abeta_pct_um = tech.abeta_pct_um;
  p.svt_uv_per_um = tech.svt_uv_per_um;
  p.asc_mv_um15 = 0.25 * tech.avt_mv_um * std::sqrt(tech.feature_nm * 1e-3);
  p.anc_mv_um15 = 0.25 * tech.avt_mv_um * std::sqrt(tech.feature_nm * 1e-3);
  return p;
}

PelgromModel::PelgromModel(const PelgromParams& params) : params_(params) {
  RELSIM_REQUIRE(params.avt_mv_um > 0.0, "A_VT must be positive");
  RELSIM_REQUIRE(params.abeta_pct_um >= 0.0, "A_beta must be non-negative");
  RELSIM_REQUIRE(params.svt_uv_per_um >= 0.0, "S_VT must be non-negative");
  RELSIM_REQUIRE(params.asc_mv_um15 >= 0.0 && params.anc_mv_um15 >= 0.0,
                 "extension terms must be non-negative");
}

double PelgromModel::sigma_dvt_pair(double w_um, double l_um,
                                    double distance_um) const {
  RELSIM_REQUIRE(w_um > 0.0 && l_um > 0.0, "W and L must be positive");
  RELSIM_REQUIRE(distance_um >= 0.0, "distance must be non-negative");
  const double area = w_um * l_um;
  double var_mv2 = params_.avt_mv_um * params_.avt_mv_um / area;
  var_mv2 += params_.asc_mv_um15 * params_.asc_mv_um15 / (w_um * l_um * l_um);
  var_mv2 += params_.anc_mv_um15 * params_.anc_mv_um15 / (w_um * w_um * l_um);
  const double sd_mv = params_.svt_uv_per_um * 1e-3 * distance_um;
  var_mv2 += sd_mv * sd_mv;
  return std::sqrt(var_mv2) * 1e-3;  // mV -> V
}

double PelgromModel::sigma_dvt_single(double w_um, double l_um) const {
  return sigma_dvt_pair(w_um, l_um, 0.0) / std::sqrt(2.0);
}

double PelgromModel::sigma_dbeta_pair(double w_um, double l_um) const {
  RELSIM_REQUIRE(w_um > 0.0 && l_um > 0.0, "W and L must be positive");
  return params_.abeta_pct_um * 1e-2 / std::sqrt(w_um * l_um);
}

double PelgromModel::sigma_dbeta_single(double w_um, double l_um) const {
  return sigma_dbeta_pair(w_um, l_um) / std::sqrt(2.0);
}

double tuinhout_benchmark_avt(double tox_nm) {
  RELSIM_REQUIRE(tox_nm > 0.0, "oxide thickness must be positive");
  return 1.0 * tox_nm;  // 1 mV*um per nm of gate oxide [43]
}

}  // namespace relsim
