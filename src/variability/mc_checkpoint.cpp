#include "variability/mc_checkpoint.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>

#include "testing/fault_injection.h"
#include "util/crc32.h"

namespace relsim {

namespace {

constexpr char kCheckpointMagic[8] = {'R', 'S', 'M', 'C', 'K', 'P', 'T', '4'};
// RSMCKPT3 differs from v4 only in the weights section: it stored raw
// likelihood ratios where v4 stores log weights. A v3 image WITHOUT a
// weights section is therefore still byte-compatible and loads fine; a v3
// image WITH weights cannot be reinterpreted (exp/log round-trip would
// silently turn every underflowed weight into -inf) and is rejected as
// corrupt so the session's recovery policy can discard and redo it.
constexpr char kCheckpointMagicV3[8] = {'R', 'S', 'M', 'C', 'K', 'P', 'T',
                                        '3'};
constexpr std::uint64_t kCheckpointHasWeights = 1;
constexpr std::size_t kCheckpointHeaderWords = 7;

void append_u64(std::string& buf, std::uint64_t v) {
  buf.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint64_t read_u64_at(const std::string& buf, std::size_t offset) {
  std::uint64_t v = 0;
  std::memcpy(&v, buf.data() + offset, sizeof(v));
  return v;
}

std::size_t checkpoint_image_size(std::size_t n, bool has_weights) {
  return sizeof(kCheckpointMagic) +
         kCheckpointHeaderWords * sizeof(std::uint64_t) +
         (n + 7) / 8 /* bitmap */ + n /* status */ + n /* attempts */ +
         n * sizeof(double) + (has_weights ? n * sizeof(double) : 0) +
         sizeof(std::uint32_t) /* CRC */;
}

[[noreturn]] void throw_corrupt(const char* what, const std::string& path) {
  throw McCheckpointCorruptError(
      std::string("corrupt Monte-Carlo checkpoint (") + what + "): " + path);
}

}  // namespace

std::size_t McCheckpointImage::done_count() const {
  std::size_t count = 0;
  for (const std::uint8_t d : done) {
    if (d) ++count;
  }
  return count;
}

bool McCheckpointImage::same_run(const McCheckpointImage& other) const {
  return seed == other.seed && n == other.n && kind == other.kind &&
         strategy_kind == other.strategy_kind &&
         strategy_digest == other.strategy_digest &&
         has_weights() == other.has_weights();
}

bool load_checkpoint_image(const std::string& path,
                           McCheckpointImage& image) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return false;
  std::string buf((std::istreambuf_iterator<char>(is)),
                  std::istreambuf_iterator<char>());

  const std::size_t header_size =
      sizeof(kCheckpointMagic) + kCheckpointHeaderWords * sizeof(std::uint64_t);
  if (buf.size() < header_size + sizeof(std::uint32_t)) {
    throw_corrupt("truncated header", path);
  }
  std::uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, buf.data() + buf.size() - sizeof(stored_crc),
              sizeof(stored_crc));
  if (crc32(buf.data(), buf.size() - sizeof(stored_crc)) != stored_crc) {
    throw_corrupt("CRC mismatch", path);
  }
  const bool v3 = std::memcmp(buf.data(), kCheckpointMagicV3,
                              sizeof(kCheckpointMagicV3)) == 0;
  if (!v3 && std::memcmp(buf.data(), kCheckpointMagic,
                         sizeof(kCheckpointMagic)) != 0) {
    throw_corrupt("bad magic/version", path);
  }
  std::size_t off = sizeof(kCheckpointMagic);
  image.seed = read_u64_at(buf, off);
  image.n = read_u64_at(buf, off + 8);
  const std::uint64_t f_kind = read_u64_at(buf, off + 16);
  const std::uint64_t f_count = read_u64_at(buf, off + 24);
  image.strategy_kind = read_u64_at(buf, off + 32);
  image.strategy_digest = read_u64_at(buf, off + 40);
  const std::uint64_t f_flags = read_u64_at(buf, off + 48);
  off += kCheckpointHeaderWords * sizeof(std::uint64_t);
  image.kind = static_cast<McCheckpointRunKind>(f_kind);
  const bool has_weights = (f_flags & kCheckpointHasWeights) != 0;
  if (v3 && has_weights) {
    throw_corrupt(
        "RSMCKPT3 raw-weight section cannot be resumed; v4 stores log "
        "weights — discard and rerun",
        path);
  }
  const std::size_t n = static_cast<std::size_t>(image.n);
  if (buf.size() != checkpoint_image_size(n, has_weights)) {
    throw_corrupt("size does not match header", path);
  }

  const std::size_t bitmap_size = (n + 7) / 8;
  const unsigned char* bitmap =
      reinterpret_cast<const unsigned char*>(buf.data() + off);
  off += bitmap_size;
  image.status.resize(n);
  image.attempts.resize(n);
  image.values.resize(n);
  std::memcpy(image.status.data(), buf.data() + off, n);
  off += n;
  std::memcpy(image.attempts.data(), buf.data() + off, n);
  off += n;
  std::memcpy(image.values.data(), buf.data() + off, n * sizeof(double));
  off += n * sizeof(double);
  if (has_weights) {
    image.weights.resize(n);
    std::memcpy(image.weights.data(), buf.data() + off, n * sizeof(double));
  } else {
    image.weights.clear();
  }

  image.done.assign(n, 0);
  std::size_t restored = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (bitmap[i / 8] & (1u << (i % 8))) {
      image.done[i] = 1;
      ++restored;
    }
  }
  if (restored != f_count) {
    throw_corrupt("bitmap disagrees with header count", path);
  }
  return true;
}

void save_checkpoint_image(const std::string& path,
                           const McCheckpointImage& image) {
  const std::size_t n = static_cast<std::size_t>(image.n);
  RELSIM_REQUIRE(image.done.size() == n && image.status.size() == n &&
                     image.attempts.size() == n && image.values.size() == n &&
                     (image.weights.empty() || image.weights.size() == n),
                 "checkpoint image arrays must all have n entries");
  const bool has_weights = image.has_weights();
  std::string buf;
  buf.reserve(checkpoint_image_size(n, has_weights));
  buf.append(kCheckpointMagic, sizeof(kCheckpointMagic));
  append_u64(buf, image.seed);
  append_u64(buf, image.n);
  append_u64(buf, static_cast<std::uint64_t>(image.kind));
  std::uint64_t count = 0;
  std::vector<std::uint8_t> bitmap((n + 7) / 8, 0);
  for (std::size_t i = 0; i < n; ++i) {
    if (image.done[i]) {
      bitmap[i / 8] |= static_cast<std::uint8_t>(1u << (i % 8));
      ++count;
    }
  }
  append_u64(buf, count);
  append_u64(buf, image.strategy_kind);
  append_u64(buf, image.strategy_digest);
  append_u64(buf, has_weights ? kCheckpointHasWeights : 0);
  buf.append(reinterpret_cast<const char*>(bitmap.data()), bitmap.size());
  buf.append(reinterpret_cast<const char*>(image.status.data()), n);
  buf.append(reinterpret_cast<const char*>(image.attempts.data()), n);
  buf.append(reinterpret_cast<const char*>(image.values.data()),
             n * sizeof(double));
  if (has_weights) {
    buf.append(reinterpret_cast<const char*>(image.weights.data()),
               n * sizeof(double));
  }
  const std::uint32_t crc = crc32(buf.data(), buf.size());
  buf.append(reinterpret_cast<const char*>(&crc), sizeof(crc));

  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    RELSIM_REQUIRE(bool(os), "cannot write Monte-Carlo checkpoint: " + tmp);
    os.write(buf.data(), static_cast<std::streamsize>(buf.size()));
    RELSIM_REQUIRE(bool(os), "cannot write Monte-Carlo checkpoint: " + tmp);
  }
  RELSIM_REQUIRE(std::rename(tmp.c_str(), path.c_str()) == 0,
                 "cannot move Monte-Carlo checkpoint into place: " + path);

  if (testing::fire(testing::FaultSite::kCheckpointCorrupt)) {
    // Chaos hook: flip one byte in the middle of the file the CRC covers.
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    if (f) {
      const std::streamoff pos = static_cast<std::streamoff>(buf.size() / 2);
      f.seekg(pos);
      char byte = 0;
      f.get(byte);
      f.seekp(pos);
      f.put(static_cast<char>(byte ^ 0x5A));
    }
  }
}

}  // namespace relsim
