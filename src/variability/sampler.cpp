#include "variability/sampler.h"

#include "util/error.h"

namespace relsim {

MismatchSampler::MismatchSampler(const PelgromModel& model, double w_um,
                                 double l_um)
    : model_(model), w_um_(w_um), l_um_(l_um) {
  RELSIM_REQUIRE(w_um > 0.0 && l_um > 0.0, "W and L must be positive");
}

MismatchSample MismatchSampler::sample_single(Xoshiro256& rng) const {
  const NormalDistribution vt(0.0, model_.sigma_dvt_single(w_um_, l_um_));
  const NormalDistribution beta(0.0, model_.sigma_dbeta_single(w_um_, l_um_));
  return {vt(rng), beta(rng)};
}

std::pair<MismatchSample, MismatchSample> MismatchSampler::sample_pair(
    Xoshiro256& rng, double distance_um) const {
  MismatchSample a = sample_single(rng);
  MismatchSample b = sample_single(rng);
  if (distance_um > 0.0) {
    // Distance gradient: a common-centroid-free pair sees a systematic
    // offset sampled once per pair, split antisymmetrically.
    const double sd_v =
        model_.params().svt_uv_per_um * 1e-6 * distance_um;
    const NormalDistribution grad(0.0, sd_v);
    const double g = grad(rng);
    a.dvt += 0.5 * g;
    b.dvt -= 0.5 * g;
  }
  return {a, b};
}

}  // namespace relsim
