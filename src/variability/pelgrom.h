// Pelgrom mismatch model — Eq. 1 of the paper.
//
//   sigma^2(dVT) = A_VT^2 / (W L) + S_VT^2 * D^2                      (1)
//
// with the nanometer-era extension terms for short- and narrow-channel
// devices ([5],[41] in the paper):
//
//   sigma^2(dVT) += A_SC^2 / (W L^2) + A_NC^2 / (W^2 L)
//
// Conventions (stated everywhere they matter):
//  - sigma_dvt() is the standard deviation of the *difference* between two
//    identically drawn devices at mutual distance D (the quantity Eq. 1
//    defines). A single device's deviation from nominal is sigma/sqrt(2).
//  - W, L and D in micrometres; A_VT in mV*um; A_SC/A_NC in mV*um^1.5;
//    S_VT in uV/um; returned sigmas in volts (dVT) or relative (dbeta).
#pragma once

#include "tech/tech.h"

namespace relsim {

struct PelgromParams {
  double avt_mv_um = 4.0;       ///< area term for VT, mV*um
  double abeta_pct_um = 1.5;    ///< area term for beta, %*um
  double svt_uv_per_um = 3.0;   ///< distance term for VT, uV/um
  double asc_mv_um15 = 0.0;     ///< short-channel extension, mV*um^1.5
  double anc_mv_um15 = 0.0;     ///< narrow-channel extension, mV*um^1.5

  /// Builds the parameters from a technology node. The extension terms are
  /// seeded at 25% of A_VT (relevant only once L or W approach the node's
  /// minimum feature size).
  static PelgromParams from_tech(const TechNode& tech);
};

class PelgromModel {
 public:
  explicit PelgromModel(const PelgromParams& params);

  const PelgromParams& params() const { return params_; }

  /// sigma of the VT difference of a device pair (volts); Eq. 1 plus the
  /// short/narrow-channel extension terms. D in um (0 = ignore gradient).
  double sigma_dvt_pair(double w_um, double l_um,
                        double distance_um = 0.0) const;

  /// sigma of a single device's VT deviation from nominal (volts):
  /// pair sigma (without the distance term) divided by sqrt(2).
  double sigma_dvt_single(double w_um, double l_um) const;

  /// sigma of the relative beta difference of a pair (dimensionless).
  double sigma_dbeta_pair(double w_um, double l_um) const;

  /// Single-device relative beta deviation (pair / sqrt(2)).
  double sigma_dbeta_single(double w_um, double l_um) const;

  /// The A_VT value implied by this model for large square devices (mV*um):
  /// what Fig. 1 plots on its y axis.
  double effective_avt_mv_um() const { return params_.avt_mv_um; }

 private:
  PelgromParams params_;
};

/// Tuinhout's scaling benchmark (Fig. 1 dashed line): the A_VT in mV*um
/// forecast for a technology with gate-oxide thickness `tox_nm`.
double tuinhout_benchmark_avt(double tox_nm);

}  // namespace relsim
