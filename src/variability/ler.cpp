#include "variability/ler.h"

#include <cmath>

#include "util/error.h"

namespace relsim {

LerParams LerParams::from_tech(const TechNode& tech) {
  LerParams p;
  // Edge roughness improves only slowly with lithography generations; the
  // roll-off length scales with the channel. Calibrated so the roll-off
  // slope at minimum L is ~2 mV/nm (a ~100 mV VT drop at L_min).
  p.rms_nm = 1.5 + 0.3 * std::sqrt(tech.feature_nm / 65.0);
  p.correlation_nm = 25.0;
  p.rolloff_v = 0.27;
  p.rolloff_length_nm = 1.0 * tech.feature_nm;
  return p;
}

LerModel::LerModel(const LerParams& params) : params_(params) {
  RELSIM_REQUIRE(params.rms_nm >= 0.0, "LER rms must be non-negative");
  RELSIM_REQUIRE(params.correlation_nm > 0.0,
                 "LER correlation length must be positive");
  RELSIM_REQUIRE(params.rolloff_length_nm > 0.0,
                 "roll-off length must be positive");
  RELSIM_REQUIRE(params.subthreshold_mv_per_dec > 0.0,
                 "subthreshold slope must be positive");
}

double LerModel::sigma_leff_nm(double w_um) const {
  RELSIM_REQUIRE(w_um > 0.0, "width must be positive");
  const double w_nm = w_um * 1e3;
  // Two independent rough edges; width-averaging leaves W/corr independent
  // segments per edge. Clamp the segment count at 1 for narrow devices.
  const double segments = std::max(w_nm / params_.correlation_nm, 1.0);
  const double per_edge_var = params_.rms_nm * params_.rms_nm / segments;
  return std::sqrt(2.0 * per_edge_var);
}

double LerModel::dvt_dl_v_per_nm(double l_um) const {
  RELSIM_REQUIRE(l_um > 0.0, "length must be positive");
  const double l_nm = l_um * 1e3;
  return params_.rolloff_v / params_.rolloff_length_nm *
         std::exp(-l_nm / params_.rolloff_length_nm);
}

double LerModel::sigma_vt(double w_um, double l_um) const {
  return dvt_dl_v_per_nm(l_um) * sigma_leff_nm(w_um);
}

double LerModel::sigma_vt_combined(const PelgromModel& pelgrom, double w_um,
                                   double l_um) const {
  const double ler = sigma_vt(w_um, l_um);
  const double rdf = pelgrom.sigma_dvt_single(w_um, l_um);
  return std::sqrt(ler * ler + rdf * rdf);
}

double LerModel::sigma_ln_ioff(double w_um, double l_um) const {
  const double sigma_vt_mv = sigma_vt(w_um, l_um) * 1e3;
  return sigma_vt_mv / params_.subthreshold_mv_per_dec * std::numbers::ln10;
}

}  // namespace relsim
