#include "variability/defect_yield.h"

#include <cmath>

#include "util/error.h"

namespace relsim {

DefectYieldModel::DefectYieldModel(const DefectYieldParams& params)
    : params_(params) {
  RELSIM_REQUIRE(params.defect_density_per_cm2 >= 0.0,
                 "defect density must be non-negative");
  RELSIM_REQUIRE(params.clustering_alpha > 0.0,
                 "clustering alpha must be positive");
}

double DefectYieldModel::yield(double area_cm2, DefectModel model) const {
  RELSIM_REQUIRE(area_cm2 >= 0.0, "area must be non-negative");
  const double lambda = area_cm2 * params_.defect_density_per_cm2;
  if (lambda == 0.0) return 1.0;
  switch (model) {
    case DefectModel::kPoisson:
      return std::exp(-lambda);
    case DefectModel::kMurphy: {
      const double f = (1.0 - std::exp(-lambda)) / lambda;
      return f * f;
    }
    case DefectModel::kStapper:
      return std::pow(1.0 + lambda / params_.clustering_alpha,
                      -params_.clustering_alpha);
  }
  return 0.0;
}

double DefectYieldModel::total_yield(double area_cm2, double parametric_yield,
                                     DefectModel model) const {
  RELSIM_REQUIRE(parametric_yield >= 0.0 && parametric_yield <= 1.0,
                 "parametric yield must be in [0,1]");
  return yield(area_cm2, model) * parametric_yield;
}

double DefectYieldModel::max_area_for_yield(double target_yield,
                                            DefectModel model) const {
  RELSIM_REQUIRE(target_yield > 0.0 && target_yield < 1.0,
                 "target yield must be in (0,1)");
  RELSIM_REQUIRE(params_.defect_density_per_cm2 > 0.0,
                 "zero defect density never limits the area");
  double lo = 0.0, hi = 1.0;
  while (yield(hi, model) > target_yield && hi < 1e6) hi *= 2.0;
  for (int i = 0; i < 80; ++i) {
    const double mid = 0.5 * (lo + hi);
    (yield(mid, model) >= target_yield ? lo : hi) = mid;
  }
  return lo;
}

}  // namespace relsim
