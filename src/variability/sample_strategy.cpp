#include "variability/sample_strategy.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "rng/distributions.h"
#include "stats/summary.h"
#include "util/error.h"

namespace relsim {
namespace {

// Stream tag for the stratified jitter of tracked input 0 (decorrelated
// from the plain sample stream derive_seed(seed, {index})).
constexpr std::uint64_t kStratJitterTag = 0x53747261744a6974ull;  // "StratJit"

constexpr double kGoldenFrac = 0.6180339887498949;  // 1/phi

std::uint64_t fnv1a(const std::string& bytes) {
  std::uint64_t h = 14695981039346656037ull;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

void append_bits(std::string& buf, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  buf.append(reinterpret_cast<const char*>(&bits), sizeof(bits));
}

}  // namespace

const char* to_string(McSampleStrategy strategy) {
  switch (strategy) {
    case McSampleStrategy::kPseudoRandom:
      return "pseudo-random";
    case McSampleStrategy::kLatinHypercube:
      return "latin-hypercube";
    case McSampleStrategy::kSobol:
      return "sobol";
    case McSampleStrategy::kStratified:
      return "stratified";
    case McSampleStrategy::kImportance:
      return "importance";
  }
  return "unknown";
}

void SampleStrategyConfig::validate(std::size_t n) const {
  switch (kind) {
    case McSampleStrategy::kPseudoRandom:
      return;
    case McSampleStrategy::kLatinHypercube:
      RELSIM_REQUIRE(dimensions >= 1,
                     "latin-hypercube strategy needs dimensions >= 1");
      RELSIM_REQUIRE(strata.empty() && shift.empty(),
                     "latin-hypercube strategy takes no strata/shift");
      return;
    case McSampleStrategy::kSobol:
      RELSIM_REQUIRE(dimensions >= 1, "sobol strategy needs dimensions >= 1");
      RELSIM_REQUIRE(dimensions <= kSobolMaxDimensions,
                     "sobol strategy supports at most " +
                         std::to_string(kSobolMaxDimensions) +
                         " dimensions; requested " +
                         std::to_string(dimensions));
      RELSIM_REQUIRE(strata.empty() && shift.empty(),
                     "sobol strategy takes no strata/shift");
      return;
    case McSampleStrategy::kStratified: {
      RELSIM_REQUIRE(strata.size() >= 2,
                     "stratified strategy needs >= 2 strata");
      RELSIM_REQUIRE(strata.size() <= 255,
                     "stratified strategy supports at most 255 strata");
      RELSIM_REQUIRE(n >= strata.size(),
                     "stratified strategy needs at least one sample per "
                     "stratum");
      RELSIM_REQUIRE(shift.empty(), "stratified strategy takes no shift");
      double weight_sum = 0.0;
      for (const McStratum& s : strata) {
        RELSIM_REQUIRE(std::isfinite(s.weight) && s.weight > 0.0,
                       "stratum weight must be positive");
        RELSIM_REQUIRE(s.sample_share < 0.0 ||
                           (std::isfinite(s.sample_share) &&
                            s.sample_share > 0.0),
                       "stratum sample_share must be positive (or < 0 for "
                       "weight-proportional)");
        weight_sum += s.weight;
      }
      RELSIM_REQUIRE(std::abs(weight_sum - 1.0) < 1e-6,
                     "stratum weights must sum to 1");
      return;
    }
    case McSampleStrategy::kImportance:
      RELSIM_REQUIRE(!shift.empty(),
                     "importance strategy needs a non-empty mean shift");
      for (double s : shift) {
        RELSIM_REQUIRE(std::isfinite(s),
                       "importance shift components must be finite");
      }
      RELSIM_REQUIRE(strata.empty(), "importance strategy takes no strata");
      return;
  }
  throw Error("unknown sample strategy kind");
}

std::uint64_t SampleStrategyConfig::digest() const {
  std::string buf;
  buf.push_back(static_cast<char>(kind));
  buf.append(reinterpret_cast<const char*>(&dimensions), sizeof(dimensions));
  buf.push_back(scramble ? 1 : 0);
  const std::uint64_t counts[2] = {strata.size(), shift.size()};
  buf.append(reinterpret_cast<const char*>(counts), sizeof(counts));
  for (const McStratum& s : strata) {
    buf.append(s.label);
    buf.push_back('\0');
    append_bits(buf, s.weight);
    append_bits(buf, s.sample_share);
  }
  for (double s : shift) append_bits(buf, s);
  return fnv1a(buf);
}

StrategyDriver::StrategyDriver(const SampleStrategyConfig& config,
                               std::uint64_t seed, std::size_t n)
    : config_(config), seed_(seed), n_(n) {
  config_.validate(n);
  switch (config_.kind) {
    case McSampleStrategy::kPseudoRandom:
    case McSampleStrategy::kImportance:
      return;
    case McSampleStrategy::kLatinHypercube:
      lhs_.emplace_back(n, config_.dimensions, seed);
      return;
    case McSampleStrategy::kSobol:
      sobol_.emplace_back(config_.dimensions,
                          config_.scramble ? seed : std::uint64_t{0});
      return;
    case McSampleStrategy::kStratified:
      break;
  }

  // Allocation shares (normalized; default: proportional to weight) and
  // cumulative probability bounds.
  const std::size_t k_count = config_.strata.size();
  std::vector<double> share_cum(k_count);
  double share_sum = 0.0;
  for (const McStratum& s : config_.strata) {
    share_sum += s.sample_share < 0.0 ? s.weight : s.sample_share;
  }
  double share_acc = 0.0;
  double weight_acc = 0.0;
  weight_cum_.resize(k_count);
  for (std::size_t k = 0; k < k_count; ++k) {
    const McStratum& s = config_.strata[k];
    share_acc += (s.sample_share < 0.0 ? s.weight : s.sample_share) /
                 share_sum;
    weight_acc += s.weight;
    share_cum[k] = share_acc;
    weight_cum_[k] = weight_acc;
  }
  share_cum.back() = 1.0;
  weight_cum_.back() = 1.0;

  // Deterministic interleaved allocation: sweep the golden-ratio sequence
  // frac((i+1)/phi) — equidistributed, so each stratum's running count
  // tracks its share at every prefix length — and map it through the
  // cumulative share intervals. A purely index-arithmetic scheme keeps the
  // assignment identical for any worker count and any committed prefix.
  stratum_of_.resize(n);
  stratum_counts_.assign(k_count, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const double u = std::fmod(static_cast<double>(i + 1) * kGoldenFrac, 1.0);
    const auto it = std::upper_bound(share_cum.begin(), share_cum.end(), u);
    const std::size_t k = std::min<std::size_t>(
        static_cast<std::size_t>(it - share_cum.begin()), k_count - 1);
    stratum_of_[i] = static_cast<std::uint8_t>(k);
    ++stratum_counts_[k];
  }
  for (std::size_t k = 0; k < k_count; ++k) {
    RELSIM_REQUIRE(
        stratum_counts_[k] > 0,
        "stratum \"" + config_.strata[k].label + "\" receives no samples at n=" +
            std::to_string(n) + "; increase n or its sample_share");
  }
}

unsigned StrategyDriver::stratum_of(std::size_t index) const {
  RELSIM_REQUIRE(index < n_, "sample index out of range");
  return stratified() ? stratum_of_[index] : 0;
}

std::size_t StrategyDriver::stratum_samples(unsigned k) const {
  RELSIM_REQUIRE(k < stratum_counts_.size(), "stratum index out of range");
  return stratum_counts_[k];
}

void StrategyDriver::stratum_bounds(unsigned k, double& lo, double& hi) const {
  RELSIM_REQUIRE(k < weight_cum_.size(), "stratum index out of range");
  lo = k == 0 ? 0.0 : weight_cum_[k - 1];
  hi = weight_cum_[k];
}

McSamplePoint::McSamplePoint(const StrategyDriver& driver, std::size_t index)
    : driver_(&driver),
      index_(index),
      rng_(derive_seed(driver.seed(), {static_cast<std::uint64_t>(index)})) {
  if (driver.stratified()) stratum_ = driver.stratum_of(index);
}

double McSamplePoint::tracked_uniform(unsigned dim) {
  switch (driver_->config_.kind) {
    case McSampleStrategy::kSobol:
      return driver_->sobol_[0].coordinate(index_, dim);
    case McSampleStrategy::kLatinHypercube:
      if (!lhs_ready_) {
        // All tracked coordinates materialize together from the per-point
        // jitter stream, so the values are independent of the order (and
        // subset) of dimensions the callback happens to request.
        lhs_coords_ = driver_->lhs_[0].point(index_);
        lhs_ready_ = true;
      }
      return lhs_coords_[dim];
    case McSampleStrategy::kStratified: {
      double lo = 0.0, hi = 1.0;
      driver_->stratum_bounds(stratum_, lo, hi);
      Xoshiro256 jitter(
          derive_seed(driver_->seed(), {kStratJitterTag, index_}));
      return lo + jitter.uniform01() * (hi - lo);
    }
    case McSampleStrategy::kPseudoRandom:
    case McSampleStrategy::kImportance:
      break;
  }
  return rng_.uniform01();
}

double McSamplePoint::uniform(unsigned dim) {
  const SampleStrategyConfig& cfg = driver_->config_;
  const bool tracked =
      ((cfg.kind == McSampleStrategy::kLatinHypercube ||
        cfg.kind == McSampleStrategy::kSobol) &&
       dim < cfg.dimensions) ||
      (cfg.kind == McSampleStrategy::kStratified && dim == 0);
  if (tracked) return tracked_uniform(dim);
  return rng_.uniform01();
}

double McSamplePoint::normal(unsigned dim) {
  const SampleStrategyConfig& cfg = driver_->config_;
  if (cfg.kind == McSampleStrategy::kImportance) {
    NormalDistribution standard(0.0, 1.0);
    const double z = standard(rng_);
    if (dim < cfg.shift.size() && cfg.shift[dim] != 0.0) {
      // Draw from the shifted proposal N(mu, 1) and fold the likelihood
      // ratio p(x)/q(x) = exp(-mu x + mu^2/2) into the sample log-weight.
      // Accumulated in log space: the per-dim factors are exp(-|mu|^2/2)
      // on average, so the running product of a high-sigma multi-dim
      // shift underflowed to 0 long before the last dimension.
      const double mu = cfg.shift[dim];
      const double x = z + mu;
      log_weight_ += -mu * x + 0.5 * mu * mu;
      return x;
    }
    return z;
  }
  const bool tracked =
      ((cfg.kind == McSampleStrategy::kLatinHypercube ||
        cfg.kind == McSampleStrategy::kSobol) &&
       dim < cfg.dimensions) ||
      (cfg.kind == McSampleStrategy::kStratified && dim == 0);
  if (tracked) return normal_quantile(tracked_uniform(dim));
  NormalDistribution standard(0.0, 1.0);
  return standard(rng_);
}

}  // namespace relsim
