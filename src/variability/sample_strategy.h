// Variance-reduction sampling strategies for McSession.
//
// A strategy changes HOW the per-sample random inputs are produced, never
// how samples are scheduled or committed, so every McSession invariant is
// preserved: sample i's inputs are a pure function of (request seed, i,
// strategy config), results are bit-identical for any worker count / chunk
// size / partition, early-stopped runs are exact prefixes, and checkpoints
// resume to the uninterrupted result (the strategy's identity rides in the
// RSMCKPT header so a checkpoint cannot silently resume under a different
// sampler).
//
// Strategies:
//  * kPseudoRandom   — the PR-2 behaviour: every draw comes from the plain
//                      per-sample xoshiro stream. The zero config.
//  * kLatinHypercube — the first `dimensions` tracked inputs form an
//                      n-point Latin hypercube (each dimension stratified
//                      into n equal slices, one sample per slice).
//  * kSobol          — the tracked inputs follow a digitally-shifted Sobol'
//                      low-discrepancy net.
//  * kStratified     — tracked input 0 is stratified over user-declared
//                      strata of [0,1) with per-stratum sample shares; the
//                      run reports a post-stratified yield estimate and
//                      per-stratum Wilson intervals.
//  * kImportance     — mean-shift importance sampling for tail yield: the
//                      first shift.size() normal() draws are shifted, the
//                      likelihood ratio is accumulated into the sample
//                      weight, and the run reports a self-normalized
//                      weighted yield estimate with an ESS diagnostic.
//
// The evaluation callback reaches the strategy through McSamplePoint:
// `uniform(d)` / `normal(d)` return tracked input d, anything past the
// tracked inputs (and `rng()` itself) falls through to the plain sample
// stream. Each tracked input should be consumed once, as either uniform or
// normal.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "rng/lowdisc.h"
#include "rng/rng.h"

namespace relsim {

enum class McSampleStrategy : std::uint8_t {
  kPseudoRandom = 0,
  kLatinHypercube = 1,
  kSobol = 2,
  kStratified = 3,
  kImportance = 4,
};

const char* to_string(McSampleStrategy strategy);

/// One user-declared stratum of tracked input 0 (a slice of [0,1) in
/// probability space). Weights are the true probability masses W_k and
/// must sum to 1; `sample_share` is the fraction of the run's samples to
/// spend in the stratum (< 0: proportional to weight). Oversampling a rare
/// stratum does not bias the estimate — the post-stratified estimator
/// reweights by W_k — it only shrinks that stratum's variance term.
struct McStratum {
  std::string label;
  double weight = 0.0;
  double sample_share = -1.0;
};

/// Strategy selection + parameters, carried on McRequest. Value-semantic
/// and cheap to copy; the per-run machinery lives in StrategyDriver.
struct SampleStrategyConfig {
  McSampleStrategy kind = McSampleStrategy::kPseudoRandom;
  /// Tracked input count for kLatinHypercube / kSobol (Sobol is capped at
  /// kSobolMaxDimensions). Ignored by the other strategies.
  unsigned dimensions = 0;
  /// kSobol: apply the random digital shift derived from the run seed
  /// (recommended; the raw net is identical for every seed).
  bool scramble = true;
  /// kStratified: the strata of tracked input 0, in [0,1) order.
  std::vector<McStratum> strata;
  /// kImportance: mean shift applied to normal() draws 0..shift.size()-1.
  std::vector<double> shift;

  bool is_plain() const { return kind == McSampleStrategy::kPseudoRandom; }

  /// Validates the config against a run of `n` samples; throws Error with
  /// a message naming the offending field.
  void validate(std::size_t n) const;

  /// Stable 64-bit identity of the full config (kind + every parameter),
  /// stored in checkpoints so resume-under-a-different-strategy is caught.
  std::uint64_t digest() const;
};

class StrategyDriver;

/// The per-sample view handed to evaluation callbacks. Construction is a
/// pure function of (driver, index): any worker, any attempt, any order
/// produces the same inputs. One instance per evaluation attempt — the
/// likelihood-ratio log-weight restarts at 0 with each attempt.
class McSamplePoint {
 public:
  McSamplePoint(const StrategyDriver& driver, std::size_t index);

  std::size_t index() const { return index_; }

  /// The plain per-sample stream Xoshiro256(derive_seed(seed, {index})) —
  /// exactly what legacy (rng, index) callbacks receive. Draws consumed
  /// through uniform()/normal() beyond the tracked inputs come from here.
  Xoshiro256& rng() { return rng_; }

  /// Tracked input `dim` as a uniform in (0,1); untracked dims fall
  /// through to rng().uniform01().
  double uniform(unsigned dim);

  /// Tracked input `dim` as a standard normal (inverse-CDF transformed
  /// for LHS/Sobol/stratified inputs; mean-shifted with the likelihood
  /// ratio folded into weight() for kImportance). Untracked dims are plain
  /// polar-method draws from rng().
  double normal(unsigned dim);

  /// Log likelihood-ratio accumulated by the importance-shifted draws so
  /// far (0 for every other strategy). Kept in log space: a 6-sigma shift
  /// over a few dozen dimensions puts the per-sample ratio at exp(-900) —
  /// far below double range — so the multiplicative form underflowed to a
  /// hard 0 and silently zeroed the self-normalized estimator and its
  /// Kish ESS. Sums over many samples rescale inside WeightedSums::add_log.
  double log_weight() const { return log_weight_; }

  /// exp(log_weight()): the raw likelihood-ratio weight. Underflows to 0
  /// beyond log_weight() < ~-745 — use log_weight() for accumulation.
  double weight() const { return std::exp(log_weight_); }

  /// Stratum of this sample (kStratified; 0 otherwise).
  unsigned stratum() const { return stratum_; }

 private:
  const StrategyDriver* driver_;
  std::size_t index_;
  Xoshiro256 rng_;
  double log_weight_ = 0.0;
  unsigned stratum_ = 0;
  bool lhs_ready_ = false;
  std::vector<double> lhs_coords_;

  double tracked_uniform(unsigned dim);
};

/// Run-scoped strategy state, built once by McSession from the validated
/// config: the point set, the stratum allocation table, and the stratum
/// bookkeeping the result assembly needs. Immutable during the run and
/// safe to share across workers.
class StrategyDriver {
 public:
  /// Validates `config` (including that every stratum receives at least
  /// one of the `n` samples) and precomputes the per-index allocation.
  StrategyDriver(const SampleStrategyConfig& config, std::uint64_t seed,
                 std::size_t n);

  const SampleStrategyConfig& config() const { return config_; }
  std::uint64_t seed() const { return seed_; }
  std::size_t n() const { return n_; }

  bool weighted() const {
    return config_.kind == McSampleStrategy::kImportance;
  }
  bool stratified() const {
    return config_.kind == McSampleStrategy::kStratified;
  }

  std::size_t stratum_count() const { return config_.strata.size(); }
  unsigned stratum_of(std::size_t index) const;
  /// Samples allocated to stratum k over the full run of n.
  std::size_t stratum_samples(unsigned k) const;
  /// [lo, hi) of stratum k in probability space (cumulative weights).
  void stratum_bounds(unsigned k, double& lo, double& hi) const;

 private:
  friend class McSamplePoint;

  SampleStrategyConfig config_;
  std::uint64_t seed_ = 0;
  std::size_t n_ = 0;
  std::vector<std::uint8_t> stratum_of_;     // [index] -> stratum
  std::vector<std::size_t> stratum_counts_;  // [stratum] -> samples
  std::vector<double> weight_cum_;           // cumulative stratum weights
  std::vector<SobolSequence> sobol_;         // 0 or 1 entries
  std::vector<LatinHypercube> lhs_;          // 0 or 1 entries
};

}  // namespace relsim
