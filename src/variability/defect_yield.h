// Defect-limited (catastrophic) yield models.
//
// Sec. 2 of the paper defines yield as "the proportion of fabricated
// circuits which meet the design specifications once the production process
// has been completed". Two loss components multiply:
//  - parametric yield (mismatch/variability: the MonteCarloEngine path) and
//  - defect-limited yield — random spot defects (particles, shorts, opens)
//    killing a die outright.
// This header provides the classic defect models so total-yield studies can
// combine them with the parametric estimates:
//
//   Poisson:            Y = exp(-A * D0)
//   Murphy:             Y = ((1 - exp(-A D0)) / (A D0))^2
//   Stapper (neg.bin.): Y = (1 + A D0 / alpha)^-alpha
//
// A is the *critical* area (cm^2) and D0 the defect density (defects/cm^2);
// alpha is the clustering parameter (alpha -> inf recovers Poisson).
#pragma once

#include <cstddef>

namespace relsim {

enum class DefectModel { kPoisson, kMurphy, kStapper };

struct DefectYieldParams {
  double defect_density_per_cm2 = 0.5;
  double clustering_alpha = 2.0;  ///< Stapper only
};

class DefectYieldModel {
 public:
  DefectYieldModel() : DefectYieldModel(DefectYieldParams{}) {}
  explicit DefectYieldModel(const DefectYieldParams& params);

  const DefectYieldParams& params() const { return params_; }

  /// Yield of a die with critical area `area_cm2` under `model`.
  double yield(double area_cm2, DefectModel model = DefectModel::kStapper) const;

  /// Combined yield: defect-limited times parametric.
  double total_yield(double area_cm2, double parametric_yield,
                     DefectModel model = DefectModel::kStapper) const;

  /// Largest die area (cm^2) that still reaches `target_yield` under
  /// `model` (bisection; target in (0,1)).
  double max_area_for_yield(double target_yield,
                            DefectModel model = DefectModel::kStapper) const;

 private:
  DefectYieldParams params_;
};

/// Critical-area helper: fraction `sensitivity` of the drawn area is
/// sensitive to defects of the relevant size.
inline double critical_area_cm2(double drawn_area_mm2, double sensitivity) {
  return drawn_area_mm2 * 1e-2 * sensitivity;
}

}  // namespace relsim
