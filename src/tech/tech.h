// Technology node library.
//
// Fig. 1 of the paper plots the mismatch constant A_VT against gate-oxide
// thickness across CMOS generations and compares it with Tuinhout's
// 1 mV*um per nm-of-oxide benchmark [43]; the benchmark holds for thick
// oxides and breaks below ~10 nm where matching improves only slightly.
// This module encodes a generation table (2 um .. 32 nm) with electrical
// and reliability parameters representative of published data, so the
// benches can regenerate the figure's trend without proprietary foundry
// decks. Values are typical textbook/survey numbers, not any foundry's PDK.
#pragma once

#include <string>
#include <vector>

namespace relsim {

/// Electromigration parameters of the interconnect stack (Eq. 4 context).
struct EmTechParams {
  /// Black's-law prefactor A, giving MTTF in seconds when J is in A/cm^2:
  /// MTTF = a_prefactor * J^-n * exp(Ea/kT). Calibrated so a copper wire at
  /// J = 1 MA/cm^2 and 105 C has a ~10-year median life.
  double a_prefactor = 1.4e9;
  /// Current-density exponent n (classically 2 for Al/Cu interconnect).
  double current_exponent = 2.0;
  /// Activation energy in eV (Al ~0.6-0.7, Cu ~0.8-0.9).
  double activation_ev = 0.8;
  /// Blech product threshold (j * L) in A/cm (wires below are EM-immune).
  double blech_product_a_per_cm = 3000.0;
  /// Median grain size in um; wires narrower than this become "bamboo".
  double grain_size_um = 0.30;
  /// Metal thickness in um.
  double metal_thickness_um = 0.35;
  /// Lognormal sigma of the lifetime distribution.
  double lifetime_sigma = 0.4;
};

/// One CMOS generation. Device W/L in um, t_ox in nm, voltages in volts,
/// KP = mu*Cox in A/V^2, A_VT in mV*um, A_beta in %*um.
struct TechNode {
  std::string name;
  double feature_nm;      ///< drawn minimum channel length, nm
  double tox_nm;          ///< gate-oxide (equivalent) thickness, nm
  double vdd;             ///< nominal supply, V
  double vt0_nmos;        ///< long-channel NMOS threshold, V
  double vt0_pmos;        ///< long-channel PMOS threshold (negative), V
  double kp_nmos;         ///< NMOS transconductance parameter, A/V^2
  double kp_pmos;         ///< PMOS transconductance parameter, A/V^2
  double lambda_per_um;   ///< channel-length modulation * L(um), 1/V
  double gamma;           ///< body-effect coefficient, sqrt(V)
  double phi;             ///< surface potential 2*phiF, V
  double avt_mv_um;       ///< measured Pelgrom constant A_VT, mV*um (Fig. 1)
  double abeta_pct_um;    ///< Pelgrom constant for beta mismatch, %*um
  double svt_uv_per_um;   ///< distance term S_VT of Eq. 1, uV/um
  EmTechParams em;

  /// Tuinhout's benchmark prediction for this node: 1 mV*um per nm of oxide.
  double tuinhout_benchmark_mv_um() const { return 1.0 * tox_nm; }
};

/// All encoded generations, ordered from oldest (2 um) to newest (32 nm).
const std::vector<TechNode>& technology_table();

/// Looks a node up by name ("65nm", "0.25um", ...). Throws if unknown.
const TechNode& technology(const std::string& name);

/// Convenience accessors for the nodes the benches use most.
const TechNode& tech_90nm();
const TechNode& tech_65nm();
const TechNode& tech_45nm();
const TechNode& tech_32nm();

}  // namespace relsim
