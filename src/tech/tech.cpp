#include "tech/tech.h"

#include "util/error.h"

namespace relsim {

namespace {

EmTechParams aluminum_em() {
  EmTechParams em;
  em.a_prefactor = 1.6e11;  // ~10-year life at 0.5 MA/cm^2, 105 C
  em.activation_ev = 0.65;
  em.grain_size_um = 0.8;
  em.metal_thickness_um = 0.6;
  return em;
}

EmTechParams copper_em() {
  EmTechParams em;
  em.a_prefactor = 1.4e9;  // ~10-year life at 1 MA/cm^2, 105 C
  em.activation_ev = 0.85;
  em.grain_size_um = 0.3;
  em.metal_thickness_um = 0.35;
  return em;
}

// The A_VT column tracks Fig. 1 / [43]: proportional to t_ox (the 1 mV*um/nm
// benchmark) down to ~10 nm oxides, then clearly above the benchmark line —
// matching keeps improving with scaling, but only slightly.
std::vector<TechNode> build_table() {
  std::vector<TechNode> t;
  //            name     feat    tox   vdd   vtn    vtp     kpn      kpp     lam   gam   phi   avt   abeta  svt
  t.push_back({"2um",    2000.0, 40.0, 5.0,  0.90, -0.90, 50e-6,  17e-6,  0.02, 0.60, 0.80, 40.0, 2.5, 4.0, aluminum_em()});
  t.push_back({"1um",    1000.0, 25.0, 5.0,  0.80, -0.80, 70e-6,  24e-6,  0.03, 0.55, 0.80, 25.0, 2.3, 4.0, aluminum_em()});
  t.push_back({"0.7um",   700.0, 17.0, 5.0,  0.75, -0.75, 85e-6,  29e-6,  0.04, 0.52, 0.80, 17.0, 2.2, 4.0, aluminum_em()});
  t.push_back({"0.5um",   500.0, 12.0, 3.3,  0.70, -0.70, 110e-6, 38e-6,  0.05, 0.50, 0.80, 12.5, 2.0, 4.0, aluminum_em()});
  t.push_back({"0.35um",  350.0,  7.5, 3.3,  0.60, -0.62, 150e-6, 52e-6,  0.06, 0.48, 0.80,  9.0, 1.9, 4.0, aluminum_em()});
  t.push_back({"0.25um",  250.0,  5.5, 2.5,  0.52, -0.55, 190e-6, 65e-6,  0.08, 0.45, 0.82,  7.0, 1.8, 4.0, aluminum_em()});
  t.push_back({"0.18um",  180.0,  4.0, 1.8,  0.45, -0.48, 260e-6, 90e-6,  0.10, 0.42, 0.84,  5.5, 1.7, 3.5, copper_em()});
  t.push_back({"0.13um",  130.0,  2.8, 1.2,  0.40, -0.42, 320e-6, 115e-6, 0.12, 0.40, 0.85,  4.8, 1.6, 3.5, copper_em()});
  t.push_back({"90nm",     90.0,  2.2, 1.2,  0.36, -0.38, 380e-6, 140e-6, 0.15, 0.38, 0.86,  4.2, 1.5, 3.0, copper_em()});
  t.push_back({"65nm",     65.0,  1.8, 1.1,  0.33, -0.35, 430e-6, 160e-6, 0.18, 0.36, 0.87,  3.8, 1.4, 3.0, copper_em()});
  t.push_back({"45nm",     45.0,  1.4, 1.0,  0.31, -0.33, 480e-6, 185e-6, 0.22, 0.34, 0.88,  3.4, 1.3, 2.5, copper_em()});
  t.push_back({"32nm",     32.0,  1.1, 0.9,  0.29, -0.31, 520e-6, 205e-6, 0.26, 0.32, 0.88,  3.1, 1.2, 2.5, copper_em()});
  return t;
}

}  // namespace

const std::vector<TechNode>& technology_table() {
  static const std::vector<TechNode> table = build_table();
  return table;
}

const TechNode& technology(const std::string& name) {
  for (const TechNode& node : technology_table()) {
    if (node.name == name) return node;
  }
  throw Error("unknown technology node: " + name);
}

const TechNode& tech_90nm() { return technology("90nm"); }
const TechNode& tech_65nm() { return technology("65nm"); }
const TechNode& tech_45nm() { return technology("45nm"); }
const TechNode& tech_32nm() { return technology("32nm"); }

}  // namespace relsim
