#include "adaptive/knobs.h"

#include "spice/analysis.h"
#include "spice/probes.h"
#include "util/error.h"

namespace relsim::adaptive {

DcNodeMonitor::DcNodeMonitor(std::string name, spice::NodeId node)
    : Monitor(std::move(name)), node_(node) {}

double DcNodeMonitor::measure(spice::Circuit& circuit) {
  return spice::dc_operating_point(circuit).v(node_);
}

SourceCurrentMonitor::SourceCurrentMonitor(std::string name,
                                           std::string source)
    : Monitor(std::move(name)), source_(std::move(source)) {}

double SourceCurrentMonitor::measure(spice::Circuit& circuit) {
  const spice::DcResult r = spice::dc_operating_point(circuit);
  return circuit.device_as<spice::VoltageSource>(source_).current(r.x());
}

RingFrequencyMonitor::RingFrequencyMonitor(std::string name, Setup setup)
    : Monitor(std::move(name)), setup_(std::move(setup)) {
  RELSIM_REQUIRE(setup_.probe != spice::kGround,
                 "ring monitor needs a probe node");
}

double RingFrequencyMonitor::measure(spice::Circuit& circuit) {
  const auto res =
      spice::transient_analysis(circuit, setup_.transient, {setup_.probe});
  return spice::estimate_frequency(res.time(), res.node(setup_.probe),
                                   setup_.window_begin_s,
                                   setup_.transient.t_stop);
}

VoltageKnob::VoltageKnob(std::string name, std::string source,
                         std::vector<double> settings_v)
    : Knob(std::move(name)),
      source_(std::move(source)),
      settings_(std::move(settings_v)) {
  RELSIM_REQUIRE(!settings_.empty(), "knob needs at least one setting");
}

int VoltageKnob::setting_count() const {
  return static_cast<int>(settings_.size());
}

double VoltageKnob::value(int setting) const {
  RELSIM_REQUIRE(setting >= 0 && setting < setting_count(),
                 "knob setting out of range");
  return settings_[static_cast<std::size_t>(setting)];
}

void VoltageKnob::apply(int setting, spice::Circuit& circuit) {
  circuit.device_as<spice::VoltageSource>(source_).set_dc(value(setting));
  setting_ = setting;
}

double VoltageKnob::cost(int setting) const {
  const double v = value(setting);
  return v * v;  // dynamic power ~ V^2
}

ResistorKnob::ResistorKnob(std::string name, std::string resistor,
                           std::vector<double> settings_ohm)
    : Knob(std::move(name)),
      resistor_(std::move(resistor)),
      settings_(std::move(settings_ohm)) {
  RELSIM_REQUIRE(!settings_.empty(), "knob needs at least one setting");
  for (double r : settings_) {
    RELSIM_REQUIRE(r > 0.0, "resistor settings must be positive");
  }
}

int ResistorKnob::setting_count() const {
  return static_cast<int>(settings_.size());
}

void ResistorKnob::apply(int setting, spice::Circuit& circuit) {
  RELSIM_REQUIRE(setting >= 0 && setting < setting_count(),
                 "knob setting out of range");
  circuit.device_as<spice::Resistor>(resistor_).set_resistance(
      settings_[static_cast<std::size_t>(setting)]);
  setting_ = setting;
}

double ResistorKnob::cost(int setting) const {
  RELSIM_REQUIRE(setting >= 0 && setting < setting_count(),
                 "knob setting out of range");
  return 1.0 / settings_[static_cast<std::size_t>(setting)] * 1e3;
}

}  // namespace relsim::adaptive
