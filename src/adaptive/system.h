// AdaptiveSystem: the Fig. 6 control loop (monitors -> control algorithm ->
// knobs) around a simulated circuit.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "adaptive/knobs.h"

namespace relsim::adaptive {

/// A specification on one monitor's reading.
struct Spec {
  std::string monitor;
  double min = -1e300;
  double max = 1e300;

  bool satisfied_by(double value) const { return value >= min && value <= max; }
  /// Distance to the allowed band, 0 when inside.
  double violation(double value) const;
};

struct SystemState {
  std::map<std::string, double> readings;
  std::vector<int> knob_settings;
  double cost = 0.0;
  bool in_spec = false;
  /// Sum of spec violations (0 when in_spec).
  double total_violation = 0.0;
};

/// Exhaustive-search control algorithm: tries every knob configuration (the
/// product space must stay small — these are 2-4 discrete hardware knobs),
/// measures the monitors, and selects the cheapest configuration meeting
/// every spec; if none does, the one with the smallest total violation.
/// This is the "Control Algorithm" block of Fig. 6 reduced to its essence;
/// a hardware implementation would use the same search over a lookup table.
class AdaptiveSystem {
 public:
  AdaptiveSystem(spice::Circuit& circuit,
                 std::vector<std::unique_ptr<Monitor>> monitors,
                 std::vector<std::unique_ptr<Knob>> knobs,
                 std::vector<Spec> specs);

  /// Measures the monitors at the current knob configuration.
  SystemState evaluate();

  /// Runs one control-loop iteration: searches the knob space and installs
  /// the selected configuration. Returns the state at that configuration.
  SystemState tune();

  /// Number of knob configurations the controller searches.
  std::size_t configuration_count() const;

  const std::vector<Spec>& specs() const { return specs_; }

 private:
  SystemState measure_configuration(const std::vector<int>& settings);
  void apply_settings(const std::vector<int>& settings);

  spice::Circuit& circuit_;
  std::vector<std::unique_ptr<Monitor>> monitors_;
  std::vector<std::unique_ptr<Knob>> knobs_;
  std::vector<Spec> specs_;
};

}  // namespace relsim::adaptive
