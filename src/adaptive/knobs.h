// Knobs & monitors — Sec. 5.2 / Fig. 6 of the paper ([3],[4], Dierickx).
//
// "The idea is to continuously monitor the operation of a system or circuit
// and take runtime countermeasures to compensate for variability and
// reliability errors." A self-adaptive system has three parts:
//  - Monitors: simple measurement circuits observing actual performance;
//  - Knobs: tunable/reconfigurable circuit parts that move the operating
//    point;
//  - a Control Algorithm choosing the knob configuration that satisfies the
//    specifications (at minimum cost) as the performance drifts over time.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "spice/analysis.h"
#include "spice/circuit.h"

namespace relsim::adaptive {

/// A performance monitor: measures one scalar from the (simulated) system.
class Monitor {
 public:
  explicit Monitor(std::string name) : name_(std::move(name)) {}
  virtual ~Monitor() = default;
  const std::string& name() const { return name_; }
  virtual double measure(spice::Circuit& circuit) = 0;

 private:
  std::string name_;
};

/// DC node-voltage monitor.
class DcNodeMonitor final : public Monitor {
 public:
  DcNodeMonitor(std::string name, spice::NodeId node);
  double measure(spice::Circuit& circuit) override;

 private:
  spice::NodeId node_;
};

/// DC branch-current monitor through a named voltage source.
class SourceCurrentMonitor final : public Monitor {
 public:
  SourceCurrentMonitor(std::string name, std::string source);
  double measure(spice::Circuit& circuit) override;

 private:
  std::string source_;
};

/// Ring-oscillator frequency monitor: runs a short transient with initial
/// conditions and extracts the frequency at the probe node.
class RingFrequencyMonitor final : public Monitor {
 public:
  struct Setup {
    spice::NodeId probe = spice::kGround;
    spice::TransientOptions transient;  ///< must carry UIC for startup
    double window_begin_s = 0.0;
  };
  RingFrequencyMonitor(std::string name, Setup setup);
  double measure(spice::Circuit& circuit) override;

 private:
  Setup setup_;
};

/// A tunable circuit part with a discrete set of settings.
class Knob {
 public:
  explicit Knob(std::string name) : name_(std::move(name)) {}
  virtual ~Knob() = default;
  const std::string& name() const { return name_; }
  virtual int setting_count() const = 0;
  virtual int setting() const = 0;
  virtual void apply(int setting, spice::Circuit& circuit) = 0;
  /// Relative cost of a setting (power/area proxy the controller minimizes).
  virtual double cost(int setting) const = 0;

 private:
  std::string name_;
};

/// Knob over the DC value of a voltage source (supply, bias, body bias).
/// Cost grows quadratically with voltage (dynamic-power proxy).
class VoltageKnob final : public Knob {
 public:
  VoltageKnob(std::string name, std::string source,
              std::vector<double> settings_v);
  int setting_count() const override;
  int setting() const override { return setting_; }
  void apply(int setting, spice::Circuit& circuit) override;
  double cost(int setting) const override;
  double value(int setting) const;

 private:
  std::string source_;
  std::vector<double> settings_;
  int setting_ = 0;
};

/// Knob over a resistor value (bias resistor trim).
class ResistorKnob final : public Knob {
 public:
  ResistorKnob(std::string name, std::string resistor,
               std::vector<double> settings_ohm);
  int setting_count() const override;
  int setting() const override { return setting_; }
  void apply(int setting, spice::Circuit& circuit) override;
  /// Lower resistance burns more bias current: cost ~ 1/R normalized.
  double cost(int setting) const override;

 private:
  std::string resistor_;
  std::vector<double> settings_;
  int setting_ = 0;
};

}  // namespace relsim::adaptive
