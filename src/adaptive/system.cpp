#include "adaptive/system.h"

#include <algorithm>

#include "util/error.h"

namespace relsim::adaptive {

double Spec::violation(double value) const {
  if (value < min) return min - value;
  if (value > max) return value - max;
  return 0.0;
}

AdaptiveSystem::AdaptiveSystem(spice::Circuit& circuit,
                               std::vector<std::unique_ptr<Monitor>> monitors,
                               std::vector<std::unique_ptr<Knob>> knobs,
                               std::vector<Spec> specs)
    : circuit_(circuit),
      monitors_(std::move(monitors)),
      knobs_(std::move(knobs)),
      specs_(std::move(specs)) {
  RELSIM_REQUIRE(!monitors_.empty(), "adaptive system needs monitors");
  for (const Spec& spec : specs_) {
    const bool known = std::any_of(
        monitors_.begin(), monitors_.end(),
        [&](const auto& m) { return m->name() == spec.monitor; });
    RELSIM_REQUIRE(known, "spec references unknown monitor: " + spec.monitor);
  }
  RELSIM_REQUIRE(configuration_count() <= 4096,
                 "knob configuration space too large for exhaustive search");
}

std::size_t AdaptiveSystem::configuration_count() const {
  std::size_t n = 1;
  for (const auto& knob : knobs_) {
    n *= static_cast<std::size_t>(knob->setting_count());
  }
  return n;
}

void AdaptiveSystem::apply_settings(const std::vector<int>& settings) {
  RELSIM_REQUIRE(settings.size() == knobs_.size(), "settings size mismatch");
  for (std::size_t k = 0; k < knobs_.size(); ++k) {
    knobs_[k]->apply(settings[k], circuit_);
  }
}

SystemState AdaptiveSystem::measure_configuration(
    const std::vector<int>& settings) {
  apply_settings(settings);
  SystemState state;
  state.knob_settings = settings;
  for (const auto& monitor : monitors_) {
    state.readings[monitor->name()] = monitor->measure(circuit_);
  }
  for (std::size_t k = 0; k < knobs_.size(); ++k) {
    state.cost += knobs_[k]->cost(settings[k]);
  }
  state.total_violation = 0.0;
  for (const Spec& spec : specs_) {
    state.total_violation += spec.violation(state.readings.at(spec.monitor));
  }
  state.in_spec = state.total_violation == 0.0;
  return state;
}

SystemState AdaptiveSystem::evaluate() {
  std::vector<int> current;
  current.reserve(knobs_.size());
  for (const auto& knob : knobs_) current.push_back(knob->setting());
  return measure_configuration(current);
}

SystemState AdaptiveSystem::tune() {
  std::vector<int> settings(knobs_.size(), 0);
  std::optional<SystemState> best_pass;
  std::optional<SystemState> best_fail;

  for (;;) {
    const SystemState state = measure_configuration(settings);
    if (state.in_spec) {
      if (!best_pass || state.cost < best_pass->cost) best_pass = state;
    } else if (!best_fail ||
               state.total_violation < best_fail->total_violation) {
      best_fail = state;
    }
    // Advance the mixed-radix configuration counter.
    std::size_t k = 0;
    for (; k < knobs_.size(); ++k) {
      if (++settings[k] < knobs_[k]->setting_count()) break;
      settings[k] = 0;
    }
    if (k == knobs_.size()) break;
  }

  const SystemState& chosen = best_pass ? *best_pass : *best_fail;
  apply_settings(chosen.knob_settings);
  return chosen;
}

}  // namespace relsim::adaptive
