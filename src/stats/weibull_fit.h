// Weibull parameter estimation for time-to-breakdown samples (TDDB, E4).
//
// Two estimators are provided:
//  - rank regression (median ranks + least squares on the Weibull plot
//    coordinates ln t vs ln(-ln(1-F))), the estimator reliability papers
//    plot directly; and
//  - maximum likelihood, solved by Newton iteration on the shape parameter.
#pragma once

#include <vector>

namespace relsim {

struct WeibullEstimate {
  double shape = 0.0;  ///< beta (the "Weibull slope")
  double scale = 0.0;  ///< eta (63.2% life)
  /// Coefficient of determination of the Weibull-plot points against the
  /// fitted line. For rank regression this is the regression r^2; for the
  /// MLE it is computed a posteriori against the MLE line (a real
  /// goodness-of-fit — it can be < the rank-regression value, and negative
  /// for a sample that is not Weibull at all).
  double r_squared = 0.0;
};

/// One point of a Weibull probability plot.
struct WeibullPlotPoint {
  double time;
  double median_rank;   ///< F_i = (i - 0.3) / (n + 0.4)
  double ln_time;       ///< x coordinate
  double weibull_y;     ///< ln(-ln(1 - F_i))
};

/// Benard median-rank plotting positions for a (copy-sorted) sample.
std::vector<WeibullPlotPoint> weibull_plot(std::vector<double> times);

/// Rank-regression estimate. Requires >= 3 strictly positive samples.
WeibullEstimate fit_weibull_rank_regression(std::vector<double> times);

/// Maximum-likelihood estimate. Requires >= 3 strictly positive samples.
/// The shape equation is solved by bracketing the (strictly increasing)
/// profile-likelihood root and running damped Newton steps clipped into the
/// bracket, with bisection as the fallback — the iteration cannot overshoot
/// into k <= 0. Throws ConvergenceError only for (near-)degenerate samples
/// where no finite shape maximizes the likelihood (all times equal).
WeibullEstimate fit_weibull_mle(const std::vector<double>& times);

}  // namespace relsim
