// Weibull parameter estimation for time-to-breakdown samples (TDDB, E4).
//
// Two estimators are provided:
//  - rank regression (median ranks + least squares on the Weibull plot
//    coordinates ln t vs ln(-ln(1-F))), the estimator reliability papers
//    plot directly; and
//  - maximum likelihood, solved by Newton iteration on the shape parameter.
#pragma once

#include <vector>

namespace relsim {

struct WeibullEstimate {
  double shape = 0.0;  ///< beta (the "Weibull slope")
  double scale = 0.0;  ///< eta (63.2% life)
  /// r^2 of the rank-regression line (1.0 for the MLE estimator).
  double r_squared = 0.0;
};

/// One point of a Weibull probability plot.
struct WeibullPlotPoint {
  double time;
  double median_rank;   ///< F_i = (i - 0.3) / (n + 0.4)
  double ln_time;       ///< x coordinate
  double weibull_y;     ///< ln(-ln(1 - F_i))
};

/// Benard median-rank plotting positions for a (copy-sorted) sample.
std::vector<WeibullPlotPoint> weibull_plot(std::vector<double> times);

/// Rank-regression estimate. Requires >= 3 strictly positive samples.
WeibullEstimate fit_weibull_rank_regression(std::vector<double> times);

/// Maximum-likelihood estimate. Requires >= 3 strictly positive samples.
/// Throws ConvergenceError if the Newton iteration does not converge.
WeibullEstimate fit_weibull_mle(const std::vector<double>& times);

}  // namespace relsim
