// Streaming summary statistics and quantiles.
#pragma once

#include <cstddef>
#include <vector>

namespace relsim {

/// Numerically stable (Welford) streaming mean/variance with min/max.
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return count_; }
  double mean() const;
  /// Unbiased sample variance (n-1 denominator); requires count >= 2.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;

  /// Half-width of the normal-approximation confidence interval on the mean
  /// at ~95% (1.96 sigma/sqrt(n)); requires count >= 2.
  double mean_ci95_halfwidth() const;

  /// Merges another accumulator (parallel reduction).
  void merge(const RunningStats& other);

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Quantile of a sample using linear interpolation between order statistics
/// (type-7, the numpy default). `p` in [0,1]. Sorts a copy.
double quantile(std::vector<double> values, double p);

/// Convenience: median.
double median(std::vector<double> values);

/// Wilson score interval for a binomial proportion: returns {lo, hi} for
/// `successes` out of `trials` at the confidence of z-score `z` (default
/// ~95%). Used for yield estimates and their early-stopping decisions.
struct ProportionInterval {
  double estimate;
  double lo;
  double hi;
};
ProportionInterval wilson_interval(std::size_t successes, std::size_t trials,
                                   double z = 1.959963984540054);

/// How censored samples (evaluations that FAILED rather than returned a
/// pass/fail verdict — solver aborts, non-finite metrics) enter a yield
/// estimate. The choice is the caller's: there is no neutral default that
/// suits both "a crash is a dead die" and "a crash is missing data".
enum class CensoredPolicy {
  /// Censored samples count as failures: they stay in the denominator and
  /// never in the numerator. Conservative — yield can only drop.
  kTreatAsFail,
  /// Censored samples are excluded from numerator AND denominator, as if
  /// never drawn. Unbiased IF failures are independent of the outcome.
  kExclude,
};

const char* to_string(CensoredPolicy policy);

/// Wilson interval over `trials` draws of which `censored` produced no
/// verdict, folding the censored draws in per `policy`. `successes` counts
/// uncensored passes only; `censored <= trials`, and under kExclude at
/// least one uncensored trial must remain.
ProportionInterval wilson_interval(std::size_t successes, std::size_t trials,
                                   std::size_t censored, CensoredPolicy policy,
                                   double z = 1.959963984540054);

}  // namespace relsim
