// Streaming summary statistics, quantiles, and yield-interval estimators.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

namespace relsim {

/// Numerically stable (Welford) streaming mean/variance with min/max.
///
/// Non-finite observations (NaN/±Inf) never enter the moments or min/max —
/// one NaN used to poison the mean and freeze min/max for the rest of the
/// stream. They are tallied in a separate `nonfinite` counter instead, the
/// same contract obs::Histogram uses, so a sick producer stays visible.
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return count_; }
  /// Non-finite observations rejected by add(); not part of count().
  std::size_t nonfinite() const { return nonfinite_; }
  double mean() const;
  /// Unbiased sample variance (n-1 denominator); requires count >= 2.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;

  /// Half-width of the normal-approximation confidence interval on the mean
  /// at ~95% (1.96 sigma/sqrt(n)); requires count >= 2.
  double mean_ci95_halfwidth() const;

  /// Merges another accumulator (parallel reduction).
  void merge(const RunningStats& other);

 private:
  std::size_t count_ = 0;
  std::size_t nonfinite_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// How censored samples (evaluations that FAILED rather than returned a
/// pass/fail verdict — solver aborts, non-finite metrics) enter a yield
/// estimate. The choice is the caller's: there is no neutral default that
/// suits both "a crash is a dead die" and "a crash is missing data".
enum class CensoredPolicy {
  /// Censored samples count as failures: they stay in the denominator and
  /// never in the numerator. Conservative — yield can only drop.
  kTreatAsFail,
  /// Censored samples are excluded from numerator AND denominator, as if
  /// never drawn. Unbiased IF failures are independent of the outcome.
  kExclude,
};

const char* to_string(CensoredPolicy policy);

/// Quantile of a sample using linear interpolation between order statistics
/// (type-7, the numpy default). `p` in [0,1]. Sorts a copy.
///
/// NaN entries (censored-sample slots) are partitioned out before the sort
/// — sorting NaNs violates strict weak ordering and is undefined behavior —
/// and ignored (CensoredPolicy::kExclude semantics). At least one non-NaN
/// sample must remain. ±Inf are legitimate, sortable values and are kept.
double quantile(std::vector<double> values, double p);

/// Convenience: median.
double median(std::vector<double> values);

/// Quantile with explicit censoring accounting. Never throws: an empty or
/// all-NaN sample, or `p` outside [0,1], reports value == nullopt.
///
/// Under kExclude the quantile is taken over the non-NaN entries alone.
/// Under kTreatAsFail each NaN counts as a sample at the FAILING extreme
/// (+inf — conservative for error-magnitude metrics, where larger is
/// worse); a quantile that lands in that censored tail has no finite value
/// and reports nullopt.
struct CensoredQuantile {
  std::optional<double> value;
  std::size_t used = 0;      ///< non-NaN samples the estimate is built on
  std::size_t censored = 0;  ///< NaN slots partitioned out of the sort
};
CensoredQuantile quantile_censored(
    std::vector<double> values, double p,
    CensoredPolicy policy = CensoredPolicy::kExclude);

/// Wilson score interval for a binomial proportion: returns {lo, hi} for
/// `successes` out of `trials` at the confidence of z-score `z` (default
/// ~95%). Used for yield estimates and their early-stopping decisions.
struct ProportionInterval {
  double estimate;
  double lo;
  double hi;
};
ProportionInterval wilson_interval(std::size_t successes, std::size_t trials,
                                   double z = 1.959963984540054);

/// Wilson interval over `trials` draws of which `censored` produced no
/// verdict, folding the censored draws in per `policy`. `successes` counts
/// uncensored passes only; `censored <= trials`, and under kExclude at
/// least one uncensored trial must remain.
ProportionInterval wilson_interval(std::size_t successes, std::size_t trials,
                                   std::size_t censored, CensoredPolicy policy,
                                   double z = 1.959963984540054);

/// Standard normal CDF Phi(x).
double normal_cdf(double x);

/// Standard normal quantile Phi^-1(p), p in (0,1). Acklam's rational
/// approximation (|rel err| < 1.2e-9) — pure arithmetic, no libm special
/// functions, so the result is bit-identical across platforms and safe to
/// use inside reproducible sampling paths (QMC point -> normal mapping).
double normal_quantile(double p);

/// Running sums of an importance-sampled (weighted) sample: weights w_i
/// and values x_i accumulate the five power sums the self-normalized
/// estimator and its delta-method variance need. For yield runs x_i is the
/// 0/1 pass indicator. Deterministic given the insertion order.
///
/// High-sigma importance runs produce weights far outside double range
/// (log w_i ~ -|mu|^2/2, i.e. exp(-900) for a 6-sigma multi-dim shift), so
/// the sums carry a shared `log_scale`: the stored fields hold
/// sum(w_i * exp(-log_scale)) etc., rescaled on the fly to keep the
/// largest weight at exp(0). The scale cancels out of every ratio
/// estimator (mean, ess, mean_variance); only the unnormalized estimators
/// multiply it back. Feed extreme weights through add_log — add() keeps
/// the legacy raw-weight behaviour (bit-identical when log_scale == 0).
struct WeightedSums {
  double w = 0.0;     ///< sum w_i * exp(-log_scale)
  double w2 = 0.0;    ///< sum w_i^2 * exp(-2 log_scale)
  double wx = 0.0;    ///< sum w_i x_i * exp(-log_scale)
  double w2x = 0.0;   ///< sum w_i^2 x_i * exp(-2 log_scale)
  double w2x2 = 0.0;  ///< sum w_i^2 x_i^2 * exp(-2 log_scale)
  double log_scale = 0.0;  ///< shared log factor of the stored sums
  std::size_t count = 0;

  void add(double weight, double x);
  /// Accumulates a sample whose weight is exp(log_weight), rescaling the
  /// stored sums when log_weight exceeds the current scale. log_weight
  /// may be -inf (a zero-weight sample: counts, contributes no mass) but
  /// not NaN/+inf. The rescale sequence depends only on insertion order,
  /// so index-ordered folds stay bit-identical across worker counts.
  void add_log(double log_weight, double x);
  void merge(const WeightedSums& other);

  /// Self-normalized estimate sum(w x)/sum(w); requires w > 0.
  double mean() const;
  /// Kish effective sample size (sum w)^2 / sum w^2; 0 when empty.
  double ess() const;
  /// Delta-method variance of mean(): sum w_i^2 (x_i - mean)^2 / (sum w)^2.
  double mean_variance() const;
  /// Unbiased (unnormalized) estimate sum(w x)/count — the classic
  /// importance-sampling estimator; requires count > 0. Underflows to 0
  /// when the true value is below double range (log_scale very negative).
  double mean_unnormalized() const;
  /// Variance of mean_unnormalized(): sample variance of w_i x_i over n.
  double mean_unnormalized_variance() const;

 private:
  void rescale_to(double new_scale);
};

/// Self-normalized importance-sampling CI for a proportion (0/1 values):
/// mean +- z*sqrt(mean_variance), clamped to [0,1]. Requires sum w > 0.
ProportionInterval self_normalized_interval(const WeightedSums& sums,
                                            double z = 1.959963984540054);

/// CI for the unbiased (unnormalized) importance-sampling proportion
/// estimate, clamped to [0,1]. Requires count > 0.
ProportionInterval unnormalized_interval(const WeightedSums& sums,
                                         double z = 1.959963984540054);

/// One stratum's tallies for a post-stratified yield estimate: `weight` is
/// the stratum's probability mass W_k (sum to 1 across strata), `total`
/// counts every committed sample of the stratum including `censored` ones,
/// `passed` the uncensored passes.
struct StratumCount {
  double weight = 0.0;
  std::size_t passed = 0;
  std::size_t total = 0;
  std::size_t censored = 0;
};

/// Post-stratified yield estimate Y = sum_k W_k p_k with a normal-
/// approximation interval from var = sum_k W_k^2 p_k(1-p_k)/n_k, censoring
/// folded into each stratum per `policy`. Every stratum must keep a
/// positive denominator under the policy.
ProportionInterval post_stratified_interval(
    const std::vector<StratumCount>& strata, CensoredPolicy policy,
    double z = 1.959963984540054);

}  // namespace relsim
