#include "stats/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "util/error.h"

namespace relsim {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  RELSIM_REQUIRE(hi > lo, "histogram range must be non-empty");
  RELSIM_REQUIRE(bins > 0, "histogram needs at least one bin");
}

void Histogram::add(double x) {
  ++total_;
  if (std::isnan(x)) {
    ++nonfinite_;
    return;
  }
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto bin = static_cast<std::size_t>((x - lo_) / width);
  bin = std::min(bin, counts_.size() - 1);  // guard FP edge at x ~= hi
  ++counts_[bin];
}

void Histogram::add_all(const std::vector<double>& xs) {
  for (double x : xs) add(x);
}

std::size_t Histogram::count(std::size_t bin) const {
  RELSIM_REQUIRE(bin < counts_.size(), "histogram bin out of range");
  return counts_[bin];
}

double Histogram::bin_lo(std::size_t bin) const {
  RELSIM_REQUIRE(bin < counts_.size(), "histogram bin out of range");
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(bin);
}

double Histogram::bin_hi(std::size_t bin) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return bin_lo(bin) + width;
}

double Histogram::bin_center(std::size_t bin) const {
  return 0.5 * (bin_lo(bin) + bin_hi(bin));
}

double Histogram::mass(std::size_t bin) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(count(bin)) / static_cast<double>(total_);
}

double Histogram::density(std::size_t bin) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return mass(bin) / width;
}

std::string Histogram::ascii(std::size_t max_width) const {
  std::size_t peak = 1;
  for (std::size_t c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  os.setf(std::ios::scientific);
  os.precision(3);
  os << "underflow (< " << lo_ << ")  " << underflow_ << '\n';
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const std::size_t bar = counts_[b] * max_width / peak;
    os << "[" << bin_lo(b) << ", " << bin_hi(b) << ")  ";
    os << std::string(bar, '#') << "  " << counts_[b] << '\n';
  }
  os << "overflow (>= " << hi_ << ")  " << overflow_ << '\n';
  if (nonfinite_ > 0) os << "nan  " << nonfinite_ << '\n';
  return os.str();
}

namespace {

// Shortest-ish round-trip double formatting for the hand-rolled JSON below
// (the stats library sits below obs in the layering, so obs::JsonWriter is
// off limits here).
std::string fmt_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace

std::string Histogram::json() const {
  std::ostringstream os;
  os << "{\"lo\":" << fmt_double(lo_) << ",\"hi\":" << fmt_double(hi_)
     << ",\"total\":" << total_ << ",\"underflow\":" << underflow_
     << ",\"overflow\":" << overflow_ << ",\"nonfinite\":" << nonfinite_
     << ",\"bins\":[";
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    if (b != 0) os << ',';
    os << "{\"lo\":" << fmt_double(bin_lo(b))
       << ",\"hi\":" << fmt_double(bin_hi(b)) << ",\"count\":" << counts_[b]
       << ",\"density\":" << fmt_double(density(b)) << '}';
  }
  os << "]}";
  return os.str();
}

}  // namespace relsim
