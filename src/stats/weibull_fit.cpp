#include "stats/weibull_fit.h"

#include <algorithm>
#include <cmath>

#include "stats/regression.h"
#include "util/error.h"

namespace relsim {

std::vector<WeibullPlotPoint> weibull_plot(std::vector<double> times) {
  RELSIM_REQUIRE(!times.empty(), "weibull_plot of empty sample");
  std::sort(times.begin(), times.end());
  RELSIM_REQUIRE(times.front() > 0.0, "Weibull samples must be positive");
  const double n = static_cast<double>(times.size());
  std::vector<WeibullPlotPoint> points;
  points.reserve(times.size());
  for (std::size_t i = 0; i < times.size(); ++i) {
    const double rank = (static_cast<double>(i) + 1.0 - 0.3) / (n + 0.4);
    WeibullPlotPoint p;
    p.time = times[i];
    p.median_rank = rank;
    p.ln_time = std::log(times[i]);
    p.weibull_y = std::log(-std::log1p(-rank));
    points.push_back(p);
  }
  return points;
}

WeibullEstimate fit_weibull_rank_regression(std::vector<double> times) {
  RELSIM_REQUIRE(times.size() >= 3,
                 "Weibull rank regression needs >= 3 samples");
  const auto points = weibull_plot(std::move(times));
  std::vector<double> x, y;
  x.reserve(points.size());
  y.reserve(points.size());
  for (const auto& p : points) {
    x.push_back(p.ln_time);
    y.push_back(p.weibull_y);
  }
  const LinearFit line = fit_line(x, y);
  WeibullEstimate est;
  est.shape = line.slope;
  // y = beta*ln t - beta*ln eta  =>  eta = exp(-intercept/beta)
  est.scale = std::exp(-line.intercept / line.slope);
  est.r_squared = line.r_squared;
  return est;
}

WeibullEstimate fit_weibull_mle(const std::vector<double>& times) {
  RELSIM_REQUIRE(times.size() >= 3, "Weibull MLE needs >= 3 samples");
  std::vector<double> lt;
  lt.reserve(times.size());
  for (double t : times) {
    RELSIM_REQUIRE(t > 0.0, "Weibull samples must be positive");
    lt.push_back(std::log(t));
  }
  const double n = static_cast<double>(times.size());
  double mean_lt = 0.0;
  for (double v : lt) mean_lt += v;
  mean_lt /= n;

  // Solve g(k) = sum(t^k ln t)/sum(t^k) - 1/k - mean(ln t) = 0 by Newton.
  double k = 1.0;
  for (int iter = 0; iter < 200; ++iter) {
    double s0 = 0.0, s1 = 0.0, s2 = 0.0;
    for (std::size_t i = 0; i < times.size(); ++i) {
      const double tk = std::pow(times[i], k);
      s0 += tk;
      s1 += tk * lt[i];
      s2 += tk * lt[i] * lt[i];
    }
    const double g = s1 / s0 - 1.0 / k - mean_lt;
    const double dg = (s2 * s0 - s1 * s1) / (s0 * s0) + 1.0 / (k * k);
    const double step = g / dg;
    k -= step;
    RELSIM_REQUIRE(k > 0.0, "Weibull MLE shape became non-positive");
    if (std::abs(step) < 1e-12 * std::max(1.0, std::abs(k))) {
      double s = 0.0;
      for (double t : times) s += std::pow(t, k);
      WeibullEstimate est;
      est.shape = k;
      est.scale = std::pow(s / n, 1.0 / k);
      est.r_squared = 1.0;
      return est;
    }
  }
  throw ConvergenceError("Weibull MLE did not converge");
}

}  // namespace relsim
