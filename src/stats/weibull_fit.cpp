#include "stats/weibull_fit.h"

#include <algorithm>
#include <cmath>

#include "stats/regression.h"
#include "util/error.h"

namespace relsim {

std::vector<WeibullPlotPoint> weibull_plot(std::vector<double> times) {
  RELSIM_REQUIRE(!times.empty(), "weibull_plot of empty sample");
  std::sort(times.begin(), times.end());
  RELSIM_REQUIRE(times.front() > 0.0, "Weibull samples must be positive");
  const double n = static_cast<double>(times.size());
  std::vector<WeibullPlotPoint> points;
  points.reserve(times.size());
  for (std::size_t i = 0; i < times.size(); ++i) {
    const double rank = (static_cast<double>(i) + 1.0 - 0.3) / (n + 0.4);
    WeibullPlotPoint p;
    p.time = times[i];
    p.median_rank = rank;
    p.ln_time = std::log(times[i]);
    p.weibull_y = std::log(-std::log1p(-rank));
    points.push_back(p);
  }
  return points;
}

WeibullEstimate fit_weibull_rank_regression(std::vector<double> times) {
  RELSIM_REQUIRE(times.size() >= 3,
                 "Weibull rank regression needs >= 3 samples");
  const auto points = weibull_plot(std::move(times));
  std::vector<double> x, y;
  x.reserve(points.size());
  y.reserve(points.size());
  for (const auto& p : points) {
    x.push_back(p.ln_time);
    y.push_back(p.weibull_y);
  }
  const LinearFit line = fit_line(x, y);
  WeibullEstimate est;
  est.shape = line.slope;
  // y = beta*ln t - beta*ln eta  =>  eta = exp(-intercept/beta)
  est.scale = std::exp(-line.intercept / line.slope);
  est.r_squared = line.r_squared;
  return est;
}

WeibullEstimate fit_weibull_mle(const std::vector<double>& times) {
  RELSIM_REQUIRE(times.size() >= 3, "Weibull MLE needs >= 3 samples");
  std::vector<double> lt;
  lt.reserve(times.size());
  for (double t : times) {
    RELSIM_REQUIRE(t > 0.0, "Weibull samples must be positive");
    lt.push_back(std::log(t));
  }
  const double n = static_cast<double>(times.size());
  double mean_lt = 0.0;
  double max_lt = lt.front();
  for (double v : lt) {
    mean_lt += v;
    max_lt = std::max(max_lt, v);
  }
  mean_lt /= n;

  // Profile-likelihood shape equation
  //   g(k) = sum(t^k ln t)/sum(t^k) - 1/k - mean(ln t) = 0.
  // g is strictly increasing, g(0+) = -inf and g(inf) = max(ln t) -
  // mean(ln t) >= 0, so a root exists iff the sample is non-degenerate.
  // Powers are evaluated as exp(k (ln t - max ln t)) so s0 stays in (0, n]
  // for any k — the naive pow(t, k) overflows long before the bracket caps.
  struct GEval {
    double g;
    double dg;
    double s0;
  };
  const auto eval = [&](double k) {
    double s0 = 0.0, s1 = 0.0, s2 = 0.0;
    for (std::size_t i = 0; i < lt.size(); ++i) {
      const double tk = std::exp(k * (lt[i] - max_lt));
      s0 += tk;
      s1 += tk * lt[i];
      s2 += tk * lt[i] * lt[i];
    }
    GEval e;
    e.g = s1 / s0 - 1.0 / k - mean_lt;
    e.dg = (s2 * s0 - s1 * s1) / (s0 * s0) + 1.0 / (k * k);
    e.s0 = s0;
    return e;
  };

  // Bracket the root by doubling/halving from k = 1.
  double k_lo = 1.0, k_hi = 1.0;
  if (eval(1.0).g < 0.0) {
    bool bracketed = false;
    while (k_hi < 1e15) {
      k_hi *= 2.0;
      if (eval(k_hi).g >= 0.0) {
        k_lo = k_hi / 2.0;
        bracketed = true;
        break;
      }
    }
    if (!bracketed) {
      throw ConvergenceError(
          "Weibull MLE: sample is (near-)degenerate — no finite shape "
          "maximizes the likelihood");
    }
  } else {
    while (eval(k_lo).g >= 0.0) {
      k_hi = k_lo;
      k_lo *= 0.5;
      RELSIM_REQUIRE(k_lo > 1e-300, "Weibull MLE bracket collapsed");
    }
  }

  // Damped Newton inside the bracket; any step leaving it (or a sick
  // derivative) falls back to bisection, so k stays positive throughout.
  double k = 0.5 * (k_lo + k_hi);
  GEval e = eval(k);
  for (int iter = 0; iter < 200; ++iter) {
    (e.g < 0.0 ? k_lo : k_hi) = k;
    double next = k - e.g / e.dg;
    if (!std::isfinite(next) || next <= k_lo || next >= k_hi) {
      next = 0.5 * (k_lo + k_hi);
    }
    const double step = next - k;
    k = next;
    e = eval(k);
    if (std::abs(step) < 1e-12 * std::max(1.0, k) ||
        k_hi - k_lo < 1e-12 * k) {
      WeibullEstimate est;
      est.shape = k;
      // sum t^k = exp(k max_lt) * s0, so eta = exp(max_lt) (s0/n)^(1/k).
      est.scale = std::exp(max_lt) * std::pow(e.s0 / n, 1.0 / k);
      // Real goodness-of-fit: r^2 of the Weibull-plot points against the
      // MLE line y = k (ln t - ln eta).
      const auto points = weibull_plot(times);
      const double ln_eta = std::log(est.scale);
      double mean_y = 0.0;
      for (const auto& p : points) mean_y += p.weibull_y;
      mean_y /= static_cast<double>(points.size());
      double ss_res = 0.0, ss_tot = 0.0;
      for (const auto& p : points) {
        const double fit_y = k * (p.ln_time - ln_eta);
        ss_res += (p.weibull_y - fit_y) * (p.weibull_y - fit_y);
        ss_tot += (p.weibull_y - mean_y) * (p.weibull_y - mean_y);
      }
      est.r_squared = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 0.0;
      return est;
    }
  }
  throw ConvergenceError("Weibull MLE did not converge");
}

}  // namespace relsim
