#include "stats/regression.h"

#include <cmath>

#include "util/error.h"

namespace relsim {

LinearFit fit_line(const std::vector<double>& x, const std::vector<double>& y) {
  RELSIM_REQUIRE(x.size() == y.size(), "fit_line: size mismatch");
  RELSIM_REQUIRE(x.size() >= 2, "fit_line needs at least two points");
  const double n = static_cast<double>(x.size());
  double sx = 0.0, sy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / n;
  const double my = sy / n;
  double sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  RELSIM_REQUIRE(sxx > 0.0, "fit_line: degenerate x values");
  LinearFit fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r_squared = (syy == 0.0) ? 1.0 : (sxy * sxy) / (sxx * syy);
  return fit;
}

LinearFit fit_power_law(const std::vector<double>& x,
                        const std::vector<double>& y) {
  RELSIM_REQUIRE(x.size() == y.size(), "fit_power_law: size mismatch");
  std::vector<double> lx, ly;
  lx.reserve(x.size());
  ly.reserve(y.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    RELSIM_REQUIRE(x[i] > 0.0 && y[i] > 0.0,
                   "fit_power_law needs strictly positive data");
    lx.push_back(std::log(x[i]));
    ly.push_back(std::log(y[i]));
  }
  return fit_line(lx, ly);
}

}  // namespace relsim
