// Ordinary least-squares line fit.
//
// Used throughout the benches to recover power-law exponents (slope of a
// log-log fit), Weibull slopes, and the Fig. 1 A_VT(T_ox) trend.
#pragma once

#include <vector>

namespace relsim {

struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  /// Coefficient of determination in [0,1].
  double r_squared = 0.0;

  double predict(double x) const { return intercept + slope * x; }
};

/// Fits y = intercept + slope*x by least squares. Requires >= 2 points with
/// non-degenerate x spread.
LinearFit fit_line(const std::vector<double>& x, const std::vector<double>& y);

/// Fits y = c * x^p by least squares in log-log space (all values > 0).
/// Returns {slope=p, intercept=ln c} plus r^2 of the log-space fit.
LinearFit fit_power_law(const std::vector<double>& x,
                        const std::vector<double>& y);

}  // namespace relsim
