#include "stats/summary.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace relsim {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const {
  RELSIM_REQUIRE(count_ > 0, "mean of empty sample");
  return mean_;
}

double RunningStats::variance() const {
  RELSIM_REQUIRE(count_ >= 2, "variance needs at least two samples");
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  RELSIM_REQUIRE(count_ > 0, "min of empty sample");
  return min_;
}

double RunningStats::max() const {
  RELSIM_REQUIRE(count_ > 0, "max of empty sample");
  return max_;
}

double RunningStats::mean_ci95_halfwidth() const {
  return 1.959963984540054 * stddev() / std::sqrt(static_cast<double>(count_));
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double quantile(std::vector<double> values, double p) {
  RELSIM_REQUIRE(!values.empty(), "quantile of empty sample");
  RELSIM_REQUIRE(p >= 0.0 && p <= 1.0, "quantile p must be in [0,1]");
  std::sort(values.begin(), values.end());
  const double h = p * (static_cast<double>(values.size()) - 1.0);
  const std::size_t lo = static_cast<std::size_t>(h);
  if (lo + 1 >= values.size()) return values.back();
  const double frac = h - static_cast<double>(lo);
  return values[lo] + frac * (values[lo + 1] - values[lo]);
}

double median(std::vector<double> values) { return quantile(std::move(values), 0.5); }

ProportionInterval wilson_interval(std::size_t successes, std::size_t trials,
                                   double z) {
  RELSIM_REQUIRE(trials > 0, "wilson interval needs trials > 0");
  RELSIM_REQUIRE(successes <= trials, "successes cannot exceed trials");
  RELSIM_REQUIRE(z > 0.0, "wilson interval needs a positive z-score");
  const double n = static_cast<double>(trials);
  const double phat = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (phat + z2 / (2.0 * n)) / denom;
  const double half =
      z * std::sqrt(phat * (1.0 - phat) / n + z2 / (4.0 * n * n)) / denom;
  return {phat, std::max(0.0, center - half), std::min(1.0, center + half)};
}

const char* to_string(CensoredPolicy policy) {
  switch (policy) {
    case CensoredPolicy::kTreatAsFail:
      return "treat-as-fail";
    case CensoredPolicy::kExclude:
      return "exclude";
  }
  return "unknown";
}

ProportionInterval wilson_interval(std::size_t successes, std::size_t trials,
                                   std::size_t censored, CensoredPolicy policy,
                                   double z) {
  RELSIM_REQUIRE(censored <= trials,
                 "censored samples cannot exceed trials");
  RELSIM_REQUIRE(successes <= trials - censored,
                 "successes cannot exceed uncensored trials");
  const std::size_t denom = policy == CensoredPolicy::kExclude
                                ? trials - censored
                                : trials;
  return wilson_interval(successes, denom, z);
}

}  // namespace relsim
