#include "stats/summary.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.h"

namespace relsim {

void RunningStats::add(double x) {
  if (!std::isfinite(x)) {
    ++nonfinite_;
    return;
  }
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const {
  RELSIM_REQUIRE(count_ > 0, "mean of empty sample");
  return mean_;
}

double RunningStats::variance() const {
  RELSIM_REQUIRE(count_ >= 2, "variance needs at least two samples");
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  RELSIM_REQUIRE(count_ > 0, "min of empty sample");
  return min_;
}

double RunningStats::max() const {
  RELSIM_REQUIRE(count_ > 0, "max of empty sample");
  return max_;
}

double RunningStats::mean_ci95_halfwidth() const {
  return 1.959963984540054 * stddev() / std::sqrt(static_cast<double>(count_));
}

void RunningStats::merge(const RunningStats& other) {
  nonfinite_ += other.nonfinite_;
  if (other.count_ == 0) return;
  if (count_ == 0) {
    const std::size_t nonfinite = nonfinite_;
    *this = other;
    nonfinite_ = nonfinite;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

namespace {

// Moves NaNs to the tail, sorts the non-NaN prefix, returns its length.
// ±Inf order fine under operator<; only NaN breaks strict weak ordering.
std::size_t sort_non_nan_prefix(std::vector<double>& values) {
  const auto nan_begin = std::partition(
      values.begin(), values.end(), [](double x) { return !std::isnan(x); });
  std::sort(values.begin(), nan_begin);
  return static_cast<std::size_t>(nan_begin - values.begin());
}

// Type-7 interpolated quantile over the first `n` sorted entries.
double interpolate(const std::vector<double>& sorted, std::size_t n,
                   double p) {
  const double h = p * (static_cast<double>(n) - 1.0);
  const std::size_t lo = static_cast<std::size_t>(h);
  if (lo + 1 >= n) return sorted[n - 1];
  const double frac = h - static_cast<double>(lo);
  // frac == 0 short-circuits before the difference: with an infinite
  // neighbour, 0 * inf would poison an exact order statistic with NaN.
  if (frac == 0.0) return sorted[lo];
  return sorted[lo] + frac * (sorted[lo + 1] - sorted[lo]);
}

}  // namespace

double quantile(std::vector<double> values, double p) {
  RELSIM_REQUIRE(!values.empty(), "quantile of empty sample");
  RELSIM_REQUIRE(p >= 0.0 && p <= 1.0, "quantile p must be in [0,1]");
  const std::size_t n = sort_non_nan_prefix(values);
  RELSIM_REQUIRE(n > 0, "quantile needs at least one non-NaN sample");
  return interpolate(values, n, p);
}

double median(std::vector<double> values) { return quantile(std::move(values), 0.5); }

CensoredQuantile quantile_censored(std::vector<double> values, double p,
                                   CensoredPolicy policy) {
  CensoredQuantile out;
  if (values.empty() || !(p >= 0.0 && p <= 1.0)) return out;
  const std::size_t n = sort_non_nan_prefix(values);
  out.used = n;
  out.censored = values.size() - n;
  if (n == 0) return out;
  if (policy == CensoredPolicy::kExclude || out.censored == 0) {
    out.value = interpolate(values, n, p);
    return out;
  }
  // kTreatAsFail: censored entries occupy the +inf tail of the order
  // statistics. The quantile is finite only while both interpolation
  // neighbours fall inside the non-NaN prefix.
  const std::size_t total = values.size();
  const double h = p * (static_cast<double>(total) - 1.0);
  const std::size_t lo = static_cast<std::size_t>(h);
  const double frac = h - static_cast<double>(lo);
  if (lo + 1 < n) {
    out.value = frac == 0.0
                    ? values[lo]
                    : values[lo] + frac * (values[lo + 1] - values[lo]);
  } else if (lo + 1 == n && frac == 0.0) {
    out.value = values[lo];
  } else if (lo + 1 == n) {
    // Interpolating between the last finite sample and a censored slot.
    out.value = std::nullopt;
  }
  return out;
}

ProportionInterval wilson_interval(std::size_t successes, std::size_t trials,
                                   double z) {
  RELSIM_REQUIRE(trials > 0, "wilson interval needs trials > 0");
  RELSIM_REQUIRE(successes <= trials, "successes cannot exceed trials");
  RELSIM_REQUIRE(z > 0.0, "wilson interval needs a positive z-score");
  const double n = static_cast<double>(trials);
  const double phat = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (phat + z2 / (2.0 * n)) / denom;
  const double half =
      z * std::sqrt(phat * (1.0 - phat) / n + z2 / (4.0 * n * n)) / denom;
  return {phat, std::max(0.0, center - half), std::min(1.0, center + half)};
}

const char* to_string(CensoredPolicy policy) {
  switch (policy) {
    case CensoredPolicy::kTreatAsFail:
      return "treat-as-fail";
    case CensoredPolicy::kExclude:
      return "exclude";
  }
  return "unknown";
}

ProportionInterval wilson_interval(std::size_t successes, std::size_t trials,
                                   std::size_t censored, CensoredPolicy policy,
                                   double z) {
  RELSIM_REQUIRE(censored <= trials,
                 "censored samples cannot exceed trials");
  RELSIM_REQUIRE(successes <= trials - censored,
                 "successes cannot exceed uncensored trials");
  const std::size_t denom = policy == CensoredPolicy::kExclude
                                ? trials - censored
                                : trials;
  return wilson_interval(successes, denom, z);
}

double normal_cdf(double x) {
  return 0.5 * std::erfc(-x / 1.4142135623730951);
}

double normal_quantile(double p) {
  RELSIM_REQUIRE(p > 0.0 && p < 1.0, "normal_quantile needs p in (0,1)");
  // Acklam's rational approximation: central region uses a degree-5/5
  // rational in (p - 1/2), the tails the same form in sqrt(-2 ln p).
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double kLow = 0.02425;
  if (p < kLow) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p > 1.0 - kLow) {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  const double q = p - 0.5;
  const double r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
          a[5]) *
         q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
}

void WeightedSums::rescale_to(double new_scale) {
  if (new_scale == log_scale) return;
  if (w == 0.0 && w2 == 0.0) {
    // No mass accumulated yet: re-labelling the scale is free.
    log_scale = new_scale;
    return;
  }
  const double r = std::exp(log_scale - new_scale);
  const double r2 = r * r;
  w *= r;
  wx *= r;
  w2 *= r2;
  w2x *= r2;
  w2x2 *= r2;
  log_scale = new_scale;
}

void WeightedSums::add(double weight, double x) {
  RELSIM_REQUIRE(weight >= 0.0 && std::isfinite(weight),
                 "importance weight must be finite and non-negative");
  // Raw weights live at scale exp(0). The log_scale == 0 fast path keeps
  // the legacy arithmetic bit-identical for plain raw-weight users.
  const double v = log_scale == 0.0 ? weight : weight * std::exp(-log_scale);
  w += v;
  w2 += v * v;
  wx += v * x;
  w2x += v * v * x;
  w2x2 += v * v * x * x;
  ++count;
}

void WeightedSums::add_log(double log_weight, double x) {
  RELSIM_REQUIRE(!std::isnan(log_weight) &&
                     log_weight < std::numeric_limits<double>::infinity(),
                 "importance log-weight must be < +inf and not NaN");
  if (log_weight == -std::numeric_limits<double>::infinity()) {
    // Zero weight: contributes to the sample count only.
    ++count;
    return;
  }
  if (log_weight > log_scale || (w == 0.0 && w2 == 0.0)) {
    rescale_to(log_weight);
  }
  const double v = std::exp(log_weight - log_scale);
  w += v;
  w2 += v * v;
  wx += v * x;
  w2x += v * v * x;
  w2x2 += v * v * x * x;
  ++count;
}

void WeightedSums::merge(const WeightedSums& other) {
  WeightedSums o = other;
  const double target = std::max(log_scale, o.log_scale);
  rescale_to(target);
  o.rescale_to(target);
  w += o.w;
  w2 += o.w2;
  wx += o.wx;
  w2x += o.w2x;
  w2x2 += o.w2x2;
  count += o.count;
}

double WeightedSums::mean() const {
  RELSIM_REQUIRE(w > 0.0, "weighted mean needs positive total weight");
  return wx / w;
}

double WeightedSums::ess() const {
  if (w2 <= 0.0) return 0.0;
  return w * w / w2;
}

double WeightedSums::mean_variance() const {
  const double m = mean();
  // sum w_i^2 (x_i - m)^2 expanded in the stored power sums.
  const double num = w2x2 - 2.0 * m * w2x + m * m * w2;
  return std::max(0.0, num) / (w * w);
}

double WeightedSums::mean_unnormalized() const {
  RELSIM_REQUIRE(count > 0, "weighted estimate of empty sample");
  const double scaled = wx / static_cast<double>(count);
  if (log_scale == 0.0) return scaled;  // legacy raw-weight path, bit-exact
  if (scaled == 0.0) return 0.0;
  // Multiply exp(log_scale) back in log space: exp(log_scale) alone can
  // overflow/underflow even when the product is representable.
  return std::copysign(
      std::exp(log_scale + std::log(std::abs(scaled))), scaled);
}

double WeightedSums::mean_unnormalized_variance() const {
  RELSIM_REQUIRE(count > 0, "weighted estimate of empty sample");
  const double n = static_cast<double>(count);
  const double m = wx / n;
  // Var of (1/n) sum w_i x_i: sample second moment of w x minus mean^2.
  const double second = w2x2 / n;
  const double scaled = std::max(0.0, second - m * m) / n;
  if (log_scale == 0.0) return scaled;
  if (scaled == 0.0) return 0.0;
  return std::exp(2.0 * log_scale + std::log(scaled));
}

ProportionInterval self_normalized_interval(const WeightedSums& sums,
                                            double z) {
  RELSIM_REQUIRE(z > 0.0, "interval needs a positive z-score");
  // An empty batch — or one whose weights are all exactly zero — carries
  // no information about the proportion. Report the vacuous [0, 1]
  // interval instead of dividing by the zero total weight.
  if (sums.count == 0 || sums.w <= 0.0) return {0.0, 0.0, 1.0};
  const double m = sums.mean();
  const double half = z * std::sqrt(sums.mean_variance());
  return {m, std::max(0.0, m - half), std::min(1.0, m + half)};
}

ProportionInterval unnormalized_interval(const WeightedSums& sums, double z) {
  RELSIM_REQUIRE(z > 0.0, "interval needs a positive z-score");
  if (sums.count == 0) return {0.0, 0.0, 1.0};  // vacuous: no samples
  const double m = sums.mean_unnormalized();
  const double half = z * std::sqrt(sums.mean_unnormalized_variance());
  return {m, std::max(0.0, m - half), std::min(1.0, m + half)};
}

ProportionInterval post_stratified_interval(
    const std::vector<StratumCount>& strata, CensoredPolicy policy,
    double z) {
  RELSIM_REQUIRE(!strata.empty(), "post-stratified interval needs strata");
  RELSIM_REQUIRE(z > 0.0, "interval needs a positive z-score");
  double estimate = 0.0;
  double var = 0.0;
  double weight_sum = 0.0;
  double unknown_mass = 0.0;
  for (std::size_t k = 0; k < strata.size(); ++k) {
    const StratumCount& s = strata[k];
    RELSIM_REQUIRE(s.weight > 0.0, "stratum weight must be positive");
    RELSIM_REQUIRE(s.censored <= s.total,
                   "stratum censored count cannot exceed its total");
    RELSIM_REQUIRE(s.passed <= s.total - s.censored,
                   "stratum passes cannot exceed uncensored samples");
    const std::size_t denom = policy == CensoredPolicy::kExclude
                                  ? s.total - s.censored
                                  : s.total;
    if (denom == 0) {
      // A stratum with no usable samples (tiny runs, heavy censoring under
      // kExclude) has a completely unknown p_k in [0, 1]: fold it in at
      // the midpoint and widen the interval by its full mass, instead of
      // throwing or dividing by zero.
      estimate += 0.5 * s.weight;
      unknown_mass += s.weight;
      weight_sum += s.weight;
      continue;
    }
    const double nk = static_cast<double>(denom);
    const double pk = static_cast<double>(s.passed) / nk;
    estimate += s.weight * pk;
    var += s.weight * s.weight * pk * (1.0 - pk) / nk;
    weight_sum += s.weight;
  }
  RELSIM_REQUIRE(std::abs(weight_sum - 1.0) < 1e-6,
                 "stratum weights must sum to 1");
  const double half = z * std::sqrt(var) + 0.5 * unknown_mass;
  return {estimate, std::max(0.0, estimate - half),
          std::min(1.0, estimate + half)};
}

}  // namespace relsim
