// Fixed-bin histogram used by MC benches to render distributions as text.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace relsim {

class Histogram {
 public:
  /// Creates `bins` equal-width bins spanning [lo, hi). Values outside the
  /// range are counted in underflow/overflow.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  void add_all(const std::vector<double>& xs);

  std::size_t bin_count() const { return counts_.size(); }
  std::size_t count(std::size_t bin) const;
  std::size_t underflow() const { return underflow_; }
  std::size_t overflow() const { return overflow_; }
  std::size_t total() const { return total_; }
  double bin_lo(std::size_t bin) const;
  double bin_hi(std::size_t bin) const;
  double bin_center(std::size_t bin) const;

  /// Fraction of all added samples (incl. under/overflow) in this bin.
  double density(std::size_t bin) const;

  /// Renders an ASCII bar chart, one line per bin.
  std::string ascii(std::size_t max_width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t total_ = 0;
};

}  // namespace relsim
