// Fixed-bin histogram used by MC benches to render distributions as text.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace relsim {

class Histogram {
 public:
  /// Creates `bins` equal-width bins spanning [lo, hi). Values outside the
  /// range are counted in underflow/overflow (±Inf included); NaN is
  /// tallied in a separate nonfinite counter — it compares false against
  /// both range edges and would otherwise index a bin through an undefined
  /// float->integer cast.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  void add_all(const std::vector<double>& xs);

  std::size_t bin_count() const { return counts_.size(); }
  std::size_t count(std::size_t bin) const;
  std::size_t underflow() const { return underflow_; }
  std::size_t overflow() const { return overflow_; }
  std::size_t nonfinite() const { return nonfinite_; }
  /// All added samples, including under/overflow and NaN.
  std::size_t total() const { return total_; }
  double bin_lo(std::size_t bin) const;
  double bin_hi(std::size_t bin) const;
  double bin_center(std::size_t bin) const;

  /// Probability mass of this bin: count / total (under/overflow and NaN
  /// stay in the denominator, so in-range masses sum to the in-range
  /// fraction, not 1).
  double mass(std::size_t bin) const;

  /// Probability density per unit width: count / (total * bin_width), the
  /// quantity a PDF estimate approximates. Integrating density over the
  /// [lo, hi) range (sum of density * width) gives the in-range mass
  /// fraction — out-of-range samples are real probability mass and are not
  /// silently renormalized away.
  double density(std::size_t bin) const;

  /// Renders an ASCII bar chart, one line per bin, followed by explicit
  /// underflow/overflow (and, when present, NaN) rows.
  std::string ascii(std::size_t max_width = 50) const;

  /// Renders the histogram as a JSON object with explicit underflow /
  /// overflow / nonfinite fields and per-bin {lo, hi, count, density}.
  std::string json() const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t nonfinite_ = 0;
  std::size_t total_ = 0;
};

}  // namespace relsim
