#include "emc/emi.h"

#include <cmath>

#include "spice/probes.h"
#include "util/error.h"

namespace relsim::emc {

using spice::Circuit;
using spice::DcResult;
using spice::SineWaveform;
using spice::TransientOptions;
using spice::TransientResult;
using spice::VoltageSource;

Observable Observable::node_voltage(spice::NodeId node) {
  Observable o;
  o.kind = Kind::kNodeVoltage;
  o.node = node;
  return o;
}

Observable Observable::source_current(std::string source_name) {
  Observable o;
  o.kind = Kind::kSourceCurrent;
  o.source = std::move(source_name);
  return o;
}

EmiAnalyzer::EmiAnalyzer(Circuit& circuit, std::string inject_source,
                         Observable observable)
    : circuit_(circuit),
      inject_source_(std::move(inject_source)),
      observable_(std::move(observable)) {
  // Validate the names eagerly so misuse fails at construction.
  circuit_.device_as<VoltageSource>(inject_source_);
  if (observable_.kind == Observable::Kind::kSourceCurrent) {
    circuit_.device_as<VoltageSource>(observable_.source);
  }
}

double EmiAnalyzer::observe_dc(const DcResult& result) const {
  if (observable_.kind == Observable::Kind::kNodeVoltage) {
    return result.v(observable_.node);
  }
  return circuit_.device_as<VoltageSource>(observable_.source)
      .current(result.x());
}

double EmiAnalyzer::baseline() const {
  return observe_dc(spice::dc_operating_point(circuit_));
}

RectificationPoint EmiAnalyzer::measure(double amplitude_v,
                                        double frequency_hz,
                                        const EmiOptions& options) const {
  RELSIM_REQUIRE(amplitude_v >= 0.0, "EMI amplitude must be non-negative");
  RELSIM_REQUIRE(frequency_hz > 0.0, "EMI frequency must be positive");
  RELSIM_REQUIRE(options.settle_cycles >= 1 && options.measure_cycles >= 1,
                 "EMI analysis needs at least one settle and measure cycle");

  RectificationPoint point;
  point.amplitude_v = amplitude_v;
  point.frequency_hz = frequency_hz;
  point.baseline = baseline();

  auto& source = circuit_.device_as<VoltageSource>(inject_source_);
  const double dc_offset = source.waveform().dc_value();
  auto original = source.waveform().clone();
  source.set_waveform(
      std::make_unique<SineWaveform>(dc_offset, amplitude_v, frequency_hz));

  const double period = 1.0 / frequency_hz;
  TransientOptions topt;
  topt.newton = options.newton;
  topt.dt = period / options.steps_per_cycle;
  topt.t_stop = period * (options.settle_cycles + options.measure_cycles);

  try {
    std::vector<spice::NodeId> probe_nodes;
    std::vector<std::string> probe_currents;
    if (observable_.kind == Observable::Kind::kNodeVoltage) {
      probe_nodes.push_back(observable_.node);
    } else {
      probe_currents.push_back(observable_.source);
    }
    const TransientResult res =
        transient_analysis(circuit_, topt, probe_nodes, probe_currents);
    const auto& values = observable_.kind == Observable::Kind::kNodeVoltage
                             ? res.node(observable_.node)
                             : res.source_current(observable_.source);
    const double t_begin = period * options.settle_cycles;
    point.with_emi =
        spice::time_average(res.time(), values, t_begin, topt.t_stop);
    point.ripple_pp =
        spice::peak_to_peak(res.time(), values, t_begin, topt.t_stop);
  } catch (...) {
    source.set_waveform(std::move(original));
    throw;
  }
  source.set_waveform(std::move(original));
  return point;
}

std::vector<RectificationPoint> EmiAnalyzer::amplitude_sweep(
    double frequency_hz, const std::vector<double>& amplitudes,
    const EmiOptions& options) const {
  std::vector<RectificationPoint> out;
  out.reserve(amplitudes.size());
  for (double amp : amplitudes) {
    out.push_back(measure(amp, frequency_hz, options));
  }
  return out;
}

std::vector<RectificationPoint> EmiAnalyzer::frequency_sweep(
    double amplitude_v, const std::vector<double>& frequencies,
    const EmiOptions& options) const {
  std::vector<RectificationPoint> out;
  out.reserve(frequencies.size());
  for (double f : frequencies) {
    out.push_back(measure(amplitude_v, f, options));
  }
  return out;
}

double EmiAnalyzer::immunity_threshold(double frequency_hz,
                                       double max_abs_shift, double amp_max,
                                       const EmiOptions& options) const {
  RELSIM_REQUIRE(max_abs_shift > 0.0, "shift budget must be positive");
  RELSIM_REQUIRE(amp_max > 0.0, "amplitude ceiling must be positive");
  if (std::abs(measure(amp_max, frequency_hz, options).shift()) <=
      max_abs_shift) {
    return amp_max;
  }
  double lo = 0.0, hi = amp_max;
  for (int i = 0; i < 12; ++i) {
    const double mid = 0.5 * (lo + hi);
    const auto p = measure(mid, frequency_hz, options);
    (std::abs(p.shift()) <= max_abs_shift ? lo : hi) = mid;
  }
  return lo;
}

}  // namespace relsim::emc
