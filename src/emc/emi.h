// Electromagnetic compatibility analysis — Sec. 4 of the paper.
//
// "In analog circuits, the shift of the DC operating point due to
// electromagnetic interference is identified as one of the major causes of
// failure in susceptibility tests [35],[32]" — circuit nonlinearity
// rectifies the injected RF and pumps bias points away from their design
// values (Fig. 4). The error depends on the amplitude AND the frequency of
// the interference.
//
// EmiAnalyzer implements a DPI-style (IEC 62132 [19],[13]) scan: it
// superimposes a sinusoid on a chosen source, runs a transient long enough
// to settle, and extracts the shift of the time-averaged observable against
// the EMI-free DC baseline. Sweeps over amplitude/frequency regenerate
// Fig. 4; immunity_threshold() bisects for the largest tolerable amplitude
// (the quantity immunity standards report).
#pragma once

#include <string>
#include <vector>

#include "spice/analysis.h"
#include "spice/circuit.h"

namespace relsim::emc {

/// What to observe while the interference is applied.
struct Observable {
  enum class Kind { kNodeVoltage, kSourceCurrent };
  Kind kind = Kind::kNodeVoltage;
  spice::NodeId node = spice::kGround;
  std::string source;

  static Observable node_voltage(spice::NodeId node);
  static Observable source_current(std::string source_name);
};

struct EmiOptions {
  int settle_cycles = 12;    ///< EMI cycles discarded before measuring
  int measure_cycles = 20;   ///< EMI cycles averaged
  int steps_per_cycle = 48;  ///< transient resolution
  spice::NewtonOptions newton;
};

/// One (amplitude, frequency) measurement.
struct RectificationPoint {
  double amplitude_v = 0.0;
  double frequency_hz = 0.0;
  double baseline = 0.0;   ///< EMI-free DC value of the observable
  double with_emi = 0.0;   ///< time-averaged value under EMI
  double ripple_pp = 0.0;  ///< peak-to-peak ripple of the observable

  /// The DC operating-point shift (Fig. 4's y axis).
  double shift() const { return with_emi - baseline; }
  double shift_rel() const { return baseline != 0.0 ? shift() / baseline : 0.0; }
};

class EmiAnalyzer {
 public:
  /// `inject_source` is the name of the VoltageSource the interference is
  /// superimposed on (its DC value is preserved as the sine offset).
  EmiAnalyzer(spice::Circuit& circuit, std::string inject_source,
              Observable observable);

  /// EMI-free DC value of the observable.
  double baseline() const;

  /// Runs one DPI point. The injected waveform is restored afterwards.
  RectificationPoint measure(double amplitude_v, double frequency_hz,
                             const EmiOptions& options = {}) const;

  std::vector<RectificationPoint> amplitude_sweep(
      double frequency_hz, const std::vector<double>& amplitudes,
      const EmiOptions& options = {}) const;

  std::vector<RectificationPoint> frequency_sweep(
      double amplitude_v, const std::vector<double>& frequencies,
      const EmiOptions& options = {}) const;

  /// Largest amplitude (within [0, amp_max]) whose |shift| stays below
  /// `max_abs_shift`; bisection assuming |shift| grows with amplitude.
  /// Returns amp_max when even that passes.
  double immunity_threshold(double frequency_hz, double max_abs_shift,
                            double amp_max,
                            const EmiOptions& options = {}) const;

 private:
  double observe_dc(const spice::DcResult& result) const;

  spice::Circuit& circuit_;
  std::string inject_source_;
  Observable observable_;
};

}  // namespace relsim::emc
