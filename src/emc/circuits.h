// Reference EMC testbenches (Fig. 3 of the paper).
//
// Fig. 3 is a current reference in which a filtering capacitor at the
// mirror gate *harms* the EMC behaviour: the diode-connected input device
// rectifies the interference riding on the reference line, the filter
// holds the rectified (lowered) gate DC, and the mean output current is
// pumped to a lower value (Fig. 4).
#pragma once

#include <memory>
#include <string>

#include "spice/circuit.h"
#include "tech/tech.h"

namespace relsim::emc {

/// Handles into the built testbench.
struct CurrentReferenceBench {
  std::unique_ptr<spice::Circuit> circuit;
  std::string emi_source;      ///< VoltageSource to inject EMI on
  std::string output_monitor;  ///< 0V VoltageSource carrying I_OUT
  spice::NodeId gate = spice::kGround;  ///< mirror gate node
  double i_ref = 0.0;                   ///< nominal reference current
};

struct CurrentReferenceOptions {
  double i_ref_a = 100e-6;
  double filter_r_ohm = 10e3;      ///< filter R between the mirror gates
  double filter_cap_f = 20e-12;    ///< filter cap at M2's gate (0 = none)
  double coupling_cap_f = 10e-12;  ///< EMI coupling capacitance
  double series_r_ohm = 1e3;       ///< source impedance of the EMI path
  double mirror_w_um = 8.0;
  double mirror_l_um = 0.5;
};

/// Builds the Fig. 3 testbench on the given technology:
///
///   IREF -> [node a: M1 diode + EMI coupling] -> RF -> [node g2: CF, M2]
///
/// The EMI source sits behind series_r + coupling_cap into M1's gate,
/// mimicking conducted interference on the reference pin. The diode device
/// rectifies the ripple (its mean gate voltage drops to keep the mean
/// current equal to IREF); with the filter cap installed M2 reproduces the
/// *lowered mean* -> I_OUT is pumped down. Without the filter, M2 sees the
/// full ripple and its own convexity cancels the rectification — which is
/// exactly why "filtering harms the EMC behaviour" in this circuit.
CurrentReferenceBench build_current_reference(
    const TechNode& tech, const CurrentReferenceOptions& options = {});

}  // namespace relsim::emc
