#include "emc/circuits.h"

namespace relsim::emc {

using spice::Circuit;
using spice::kGround;
using spice::NodeId;

CurrentReferenceBench build_current_reference(
    const TechNode& tech, const CurrentReferenceOptions& options) {
  CurrentReferenceBench bench;
  bench.circuit = std::make_unique<Circuit>();
  Circuit& c = *bench.circuit;

  const NodeId vdd = c.node("vdd");
  const NodeId gate1 = c.node("gate1");  // M1 diode node, EMI lands here
  const NodeId gate2 = c.node("gate2");  // M2 gate behind the RC filter
  const NodeId out = c.node("out");
  const NodeId vmeas = c.node("vmeas");
  const NodeId emi = c.node("emi");
  const NodeId emi_r = c.node("emi_r");

  c.add_vsource("VDD", vdd, kGround, tech.vdd);
  // Reference current into the diode-connected mirror input.
  c.add_isource("IREF", vdd, gate1, options.i_ref_a);
  const auto mirror_params = spice::make_mos_params(
      tech, options.mirror_w_um, options.mirror_l_um, false);
  c.add_mosfet("M1", gate1, gate1, kGround, kGround, mirror_params);
  c.add_resistor("RF", gate1, gate2, options.filter_r_ohm);
  c.add_mosfet("M2", out, gate2, kGround, kGround, mirror_params);
  // Output held near mid-rail through a 0V measuring source so that the
  // mirror output stays saturated and I_OUT is directly observable.
  c.add_vsource("VB", vmeas, kGround, 0.5 * tech.vdd);
  c.add_vsource("VMEAS", vmeas, out, 0.0);

  // Conducted-EMI path: source behind series R and coupling C to the gate.
  c.add_vsource("VEMI", emi, kGround, 0.0);
  c.add_resistor("REMI", emi, emi_r, options.series_r_ohm);
  c.add_capacitor("CC", emi_r, gate1, options.coupling_cap_f);

  if (options.filter_cap_f > 0.0) {
    c.add_capacitor("CF", gate2, kGround, options.filter_cap_f);
  }

  bench.emi_source = "VEMI";
  bench.output_monitor = "VMEAS";
  bench.gate = gate1;
  bench.i_ref = options.i_ref_a;
  return bench;
}

}  // namespace relsim::emc
