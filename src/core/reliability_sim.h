// ReliabilitySimulator — the top-level API of relsim.
//
// The paper's thesis: circuits in nanometer CMOS must be analysed for BOTH
// time-zero yield (variability, Sec. 2) and time-dependent reliability
// (NBTI/HCI/TDDB/EM, Sec. 3) at design time. This facade wires the pieces
// together:
//
//   build circuit -> apply sampled process variation (Pelgrom)
//                 -> age over a mission profile (AgingEngine + EmModel)
//                 -> evaluate performance metrics / spec predicates
//                 -> Monte-Carlo over virtual fabrications
//
// yield()           = fraction of fresh samples meeting spec   (Sec. 2)
// lifetime_yield()  = fraction meeting spec at END OF LIFE     (Sec. 3)
// The gap between the two is exactly the reliability margin the paper's
// countermeasures (calibration, knobs & monitors) recover.
#pragma once

#include <functional>
#include <memory>

#include "aging/engine.h"
#include "spice/circuit.h"
#include "spice/compiled_circuit.h"
#include "tech/tech.h"
#include "variability/corners.h"
#include "variability/mc_session.h"
#include "variability/pelgrom.h"

namespace relsim {

struct ReliabilityConfig {
  const TechNode* tech = nullptr;  ///< required
  aging::MissionProfile mission;
  std::uint64_t seed = 0xC0FFEE;
  bool enable_nbti = true;
  bool enable_hci = true;
  bool enable_tddb = true;
  bool enable_em = true;
  bool refresh_stress_each_epoch = true;
};

/// Builds a fresh copy of the circuit under test (called once per MC
/// sample; the circuit is then varied, aged and measured in place).
using CircuitFactory = std::function<std::unique_ptr<spice::Circuit>()>;

/// Pass/fail predicate on a (possibly varied/aged) circuit.
using SpecPredicate = std::function<bool(spice::Circuit&)>;

/// Scalar metric on a circuit.
using CircuitMetric = std::function<double(spice::Circuit&)>;

/// Spec predicate for the batched yield path: checks a solved DC solution
/// vector. The circuit reference is for node lookup and topology only —
/// it is a shared workspace copy whose MOSFET variation state is NOT this
/// sample's (use the solution vector, not device state).
using CompiledSpecPredicate =
    std::function<bool(const spice::Circuit&, const Vector&)>;

class ReliabilitySimulator {
 public:
  explicit ReliabilitySimulator(const ReliabilityConfig& config);

  const ReliabilityConfig& config() const { return config_; }
  const PelgromModel& pelgrom() const { return pelgrom_; }

  /// Applies sampled Pelgrom mismatch to every MOSFET in the circuit.
  void apply_process_variation(spice::Circuit& circuit,
                               Xoshiro256& rng) const;

  /// Applies a global (die-level) shift on top of any existing variation —
  /// corner analysis (variability/corners.h).
  static void apply_global_shift(spice::Circuit& circuit,
                                 const GlobalShift& shift);

  /// Ages the circuit in place over the configured mission.
  aging::AgingReport age(spice::Circuit& circuit,
                         const aging::StressRunner& runner = {}) const;

  /// Time-zero yield over `req.n` virtual fabrications, orchestrated by an
  /// McSession: the request selects threads, chunking, early stopping,
  /// checkpoint/resume and progress reporting; the result carries the
  /// Wilson estimate plus telemetry and failing-sample replay seeds. The
  /// session seed is always the simulator's config seed (req.seed is
  /// ignored), so results line up with the serial facade below.
  McResult run_yield(const CircuitFactory& factory, const SpecPredicate& pass,
                     McRequest req) const;

  /// Time-zero yield through the batched cross-sample evaluator: the
  /// circuit topology is compiled ONCE (stamp pattern + symbolic LU +
  /// stamp-slot tables), each worker applies Pelgrom samples by value-only
  /// restamping and solves K lanes in lockstep through the SIMD device
  /// kernels. Sample i draws the same mismatch stream as run_yield, so the
  /// pass/fail outcome matches the classic path up to Newton tolerance
  /// (operating points agree to the solver tolerances, not bitwise).
  /// Restricted to the pseudo-random strategy; samples whose batch fails
  /// fall back to the classic per-sample path automatically. When
  /// `stats_out` is non-null it receives compile + all per-worker solver
  /// stats (for a single topology: pattern_builds == 1 and
  /// sparse_symbolic_factorizations == 1 unless samples went singular).
  McResult run_yield_batched(const CircuitFactory& factory,
                             const CompiledSpecPredicate& pass, McRequest req,
                             spice::CompiledCircuit::Options options = {},
                             spice::SolverStats* stats_out = nullptr) const;

  /// End-of-life yield: variation + full mission aging before the check.
  McResult run_lifetime_yield(const CircuitFactory& factory,
                              const SpecPredicate& pass, McRequest req,
                              const aging::StressRunner& runner = {}) const;

  /// Metric distribution over `req.n` fresh samples (McResult::values).
  McResult run_metric(const CircuitFactory& factory,
                      const CircuitMetric& metric, McRequest req) const;

  /// Serial convenience facades: single-threaded McSession runs over `n`
  /// samples. Results are bit-identical to run_* with any thread count.
  YieldEstimate yield(const CircuitFactory& factory, const SpecPredicate& pass,
                      std::size_t n) const;

  YieldEstimate lifetime_yield(const CircuitFactory& factory,
                               const SpecPredicate& pass, std::size_t n,
                               const aging::StressRunner& runner = {}) const;

  std::vector<double> metric_distribution(const CircuitFactory& factory,
                                          const CircuitMetric& metric,
                                          std::size_t n) const;

  /// Lifetime estimation (the [27] flow of the paper: "lifetime estimation
  /// of analog circuits from the electrical characteristics of stressed
  /// MOSFETs"): bisects the mission length until `pass` first fails on the
  /// aged nominal circuit. Returns max_years when the circuit outlives the
  /// horizon, and 0 when it fails fresh. Degradation is assumed monotone
  /// in time (true for the deterministic mechanisms; TDDB timelines are
  /// deterministic per seed).
  double estimate_lifetime_years(const CircuitFactory& factory,
                                 const SpecPredicate& pass, double max_years,
                                 double tolerance_years = 0.1,
                                 const aging::StressRunner& runner = {}) const;

 private:
  aging::AgingEngine build_engine() const;

  ReliabilityConfig config_;
  PelgromModel pelgrom_;
  aging::EmModel em_;
};

}  // namespace relsim
