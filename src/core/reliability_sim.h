// ReliabilitySimulator — the top-level API of relsim.
//
// The paper's thesis: circuits in nanometer CMOS must be analysed for BOTH
// time-zero yield (variability, Sec. 2) and time-dependent reliability
// (NBTI/HCI/TDDB/EM, Sec. 3) at design time. This facade wires the pieces
// together:
//
//   build circuit -> apply sampled process variation (Pelgrom)
//                 -> age over a mission profile (AgingEngine + EmModel)
//                 -> evaluate performance metrics / spec predicates
//                 -> Monte-Carlo over virtual fabrications
//
// yield()           = fraction of fresh samples meeting spec   (Sec. 2)
// lifetime_yield()  = fraction meeting spec at END OF LIFE     (Sec. 3)
// The gap between the two is exactly the reliability margin the paper's
// countermeasures (calibration, knobs & monitors) recover.
#pragma once

#include <functional>
#include <memory>

#include "aging/engine.h"
#include "spice/circuit.h"
#include "spice/compiled_circuit.h"
#include "tech/tech.h"
#include "variability/corners.h"
#include "variability/mc_session.h"
#include "variability/pelgrom.h"

namespace relsim {

struct ReliabilityConfig {
  const TechNode* tech = nullptr;  ///< required
  aging::MissionProfile mission;
  std::uint64_t seed = 0xC0FFEE;
  bool enable_nbti = true;
  bool enable_hci = true;
  bool enable_tddb = true;
  bool enable_em = true;
  bool refresh_stress_each_epoch = true;
};

/// Builds a fresh copy of the circuit under test (called once per MC
/// sample; the circuit is then varied, aged and measured in place).
using CircuitFactory = std::function<std::unique_ptr<spice::Circuit>()>;

/// Pass/fail predicate on a (possibly varied/aged) circuit.
using SpecPredicate = std::function<bool(spice::Circuit&)>;

/// Scalar metric on a circuit.
using CircuitMetric = std::function<double(spice::Circuit&)>;

/// Spec predicate for the batched yield path: checks a solved DC solution
/// vector. The circuit reference is for node lookup and topology only —
/// it is a shared workspace copy whose MOSFET variation state is NOT this
/// sample's (use the solution vector, not device state).
using CompiledSpecPredicate =
    std::function<bool(const spice::Circuit&, const Vector&)>;

/// Declarative description of a time-zero yield run for the unified
/// run_yield entry point. Supply at least one predicate:
///
///   * `pass` (circuit predicate) keeps the run per-sample capable;
///   * `solution_pass` (DC-solution predicate) makes it batched capable —
///     the topology is compiled once and lanes solved in lockstep.
///
/// `McRequest::eval_mode` then picks the path: kAuto takes batched when
/// `solution_pass` is set and the strategy is plain pseudo-random, else
/// per-sample (via `pass` when given, otherwise a classic build-vary-solve
/// around `solution_pass`); kPerSample / kBatched force one path, kBatched
/// throwing when the run is not batch-eligible. Sample i draws the same
/// mismatch stream on both paths, so yields agree to Newton tolerance.
struct YieldSpec {
  CircuitFactory factory;  ///< required
  /// Pass/fail on the varied circuit (per-sample path). Optional when
  /// `solution_pass` is given — then the per-sample path DC-solves and
  /// delegates to it.
  SpecPredicate pass;
  /// Pass/fail on a solved DC solution vector; enables the batched path.
  CompiledSpecPredicate solution_pass;
  /// Compile options for the batched path (lanes, SIMD level, Newton).
  spice::CompiledCircuit::Options compile = {};
  /// When non-null and the batched path ran, receives compile + per-worker
  /// solver stats (pattern_builds == 1 per compile of one topology).
  spice::SolverStats* stats_out = nullptr;
};

class ReliabilitySimulator {
 public:
  explicit ReliabilitySimulator(const ReliabilityConfig& config);

  const ReliabilityConfig& config() const { return config_; }
  const PelgromModel& pelgrom() const { return pelgrom_; }

  /// Applies sampled Pelgrom mismatch to every MOSFET in the circuit.
  void apply_process_variation(spice::Circuit& circuit,
                               Xoshiro256& rng) const;

  /// Applies a global (die-level) shift on top of any existing variation —
  /// corner analysis (variability/corners.h).
  static void apply_global_shift(spice::Circuit& circuit,
                                 const GlobalShift& shift);

  /// Ages the circuit in place over the configured mission.
  aging::AgingReport age(spice::Circuit& circuit,
                         const aging::StressRunner& runner = {}) const;

  /// Time-zero yield over `req.n` virtual fabrications, orchestrated by an
  /// McSession: the request selects threads, chunking, early stopping,
  /// checkpoint/resume and progress reporting; the result carries the
  /// Wilson estimate plus telemetry and failing-sample replay seeds. The
  /// session seed is always the simulator's config seed (req.seed is
  /// ignored), so results line up with the serial facade below.
  McResult run_yield(const CircuitFactory& factory, const SpecPredicate& pass,
                     McRequest req) const;

  /// Unified yield entry point: one declarative spec, path selection by
  /// `req.eval_mode` (see YieldSpec). This is THE yield API; the
  /// two-predicate overload above is a convenience wrapper for the
  /// per-sample-only case, and run_yield_batched below is a deprecated
  /// forwarder onto this.
  McResult run_yield(const YieldSpec& spec, McRequest req) const;

  /// Former batched cross-sample entry point (topology compiled once,
  /// lanes solved in lockstep through the SIMD device kernels). Now a thin
  /// forwarder: equivalent to run_yield(YieldSpec{...}, req) with
  /// eval_mode = kBatched.
  [[deprecated(
      "use run_yield(YieldSpec{.factory, .solution_pass, ...}, req) with "
      "req.eval_mode = McEvalMode::kBatched (or kAuto); this forwarder is "
      "scheduled for removal two PRs after the montecarlo.h shims")]]
  McResult run_yield_batched(const CircuitFactory& factory,
                             const CompiledSpecPredicate& pass, McRequest req,
                             spice::CompiledCircuit::Options options = {},
                             spice::SolverStats* stats_out = nullptr) const;

  /// End-of-life yield: variation + full mission aging before the check.
  McResult run_lifetime_yield(const CircuitFactory& factory,
                              const SpecPredicate& pass, McRequest req,
                              const aging::StressRunner& runner = {}) const;

  /// Metric distribution over `req.n` fresh samples (McResult::values).
  McResult run_metric(const CircuitFactory& factory,
                      const CircuitMetric& metric, McRequest req) const;

  /// Serial convenience facades: single-threaded McSession runs over `n`
  /// samples. Results are bit-identical to run_* with any thread count.
  YieldEstimate yield(const CircuitFactory& factory, const SpecPredicate& pass,
                      std::size_t n) const;

  YieldEstimate lifetime_yield(const CircuitFactory& factory,
                               const SpecPredicate& pass, std::size_t n,
                               const aging::StressRunner& runner = {}) const;

  std::vector<double> metric_distribution(const CircuitFactory& factory,
                                          const CircuitMetric& metric,
                                          std::size_t n) const;

  /// Lifetime estimation (the [27] flow of the paper: "lifetime estimation
  /// of analog circuits from the electrical characteristics of stressed
  /// MOSFETs"): bisects the mission length until `pass` first fails on the
  /// aged nominal circuit. Returns max_years when the circuit outlives the
  /// horizon, and 0 when it fails fresh. Degradation is assumed monotone
  /// in time (true for the deterministic mechanisms; TDDB timelines are
  /// deterministic per seed).
  double estimate_lifetime_years(const CircuitFactory& factory,
                                 const SpecPredicate& pass, double max_years,
                                 double tolerance_years = 0.1,
                                 const aging::StressRunner& runner = {}) const;

 private:
  aging::AgingEngine build_engine() const;

  ReliabilityConfig config_;
  PelgromModel pelgrom_;
  aging::EmModel em_;
};

}  // namespace relsim
