#include "core/reliability_sim.h"

#include "aging/hci.h"
#include "aging/nbti.h"
#include "aging/tddb.h"
#include "variability/sampler.h"
#include "util/error.h"

namespace relsim {

ReliabilitySimulator::ReliabilitySimulator(const ReliabilityConfig& config)
    : config_(config),
      pelgrom_(config.tech != nullptr
                   ? PelgromParams::from_tech(*config.tech)
                   : PelgromParams{}),
      em_(config.tech != nullptr ? config.tech->em : EmTechParams{}) {
  RELSIM_REQUIRE(config.tech != nullptr,
                 "ReliabilityConfig needs a technology node");
}

aging::AgingEngine ReliabilitySimulator::build_engine() const {
  aging::AgingEngine engine;
  if (config_.enable_nbti) {
    engine.add_model(std::make_unique<aging::NbtiModel>());
  }
  if (config_.enable_hci) {
    engine.add_model(std::make_unique<aging::HciModel>());
  }
  if (config_.enable_tddb) {
    engine.add_model(std::make_unique<aging::TddbModel>());
  }
  return engine;
}

void ReliabilitySimulator::apply_process_variation(spice::Circuit& circuit,
                                                   Xoshiro256& rng) const {
  for (spice::Mosfet* m : circuit.mosfets()) {
    const MismatchSampler sampler(pelgrom_, m->params().w_um,
                                  m->params().l_um);
    const MismatchSample sample = sampler.sample_single(rng);
    m->set_variation({sample.dvt, sample.dbeta_rel});
  }
}

void ReliabilitySimulator::apply_global_shift(spice::Circuit& circuit,
                                              const GlobalShift& shift) {
  for (spice::Mosfet* m : circuit.mosfets()) {
    spice::MosVariation v = m->variation();
    if (m->params().is_pmos) {
      // Positive pmos_dvt means "slow": the pMOS VT becomes more negative.
      v.dvt += -shift.pmos_dvt;
      v.dbeta_rel += shift.pmos_dbeta_rel;
    } else {
      v.dvt += shift.nmos_dvt;
      v.dbeta_rel += shift.nmos_dbeta_rel;
    }
    m->set_variation(v);
  }
}

aging::AgingReport ReliabilitySimulator::age(
    spice::Circuit& circuit, const aging::StressRunner& runner) const {
  aging::AgingOptions options;
  options.mission = config_.mission;
  options.seed = config_.seed;
  options.refresh_stress_each_epoch = config_.refresh_stress_each_epoch;
  const aging::AgingEngine engine = build_engine();
  return engine.age(circuit, options, runner,
                    config_.enable_em ? &em_ : nullptr);
}

McResult ReliabilitySimulator::run_yield(const CircuitFactory& factory,
                                         const SpecPredicate& pass,
                                         McRequest req) const {
  YieldSpec spec;
  spec.factory = factory;
  spec.pass = pass;
  return run_yield(spec, std::move(req));
}

McResult ReliabilitySimulator::run_yield(const YieldSpec& spec,
                                         McRequest req) const {
  RELSIM_REQUIRE(bool(spec.factory), "run_yield needs a circuit factory");
  RELSIM_REQUIRE(bool(spec.pass) || bool(spec.solution_pass),
                 "run_yield needs a spec predicate (pass or solution_pass)");
  req.seed = config_.seed;
  if (req.run_label.empty()) req.run_label = "reliability.yield";

  bool batched = false;
  switch (req.eval_mode) {
    case McEvalMode::kPerSample:
      break;
    case McEvalMode::kBatched:
      RELSIM_REQUIRE(bool(spec.solution_pass),
                     "eval_mode=batched needs a DC-solution predicate "
                     "(YieldSpec::solution_pass)");
      RELSIM_REQUIRE(
          req.strategy.is_plain(),
          "eval_mode=batched supports only the pseudo-random strategy");
      batched = true;
      break;
    case McEvalMode::kAuto:
      batched = bool(spec.solution_pass) && req.strategy.is_plain();
      break;
  }

  // The classic solver configuration shared by every non-lockstep solve in
  // this run: the pure per-sample path and the batched path's fallback.
  spice::DcOptions dc;
  dc.newton = spec.compile.newton;
  dc.allow_gmin_stepping = spec.compile.allow_gmin_stepping;
  dc.allow_source_stepping = spec.compile.allow_source_stepping;

  if (!batched) {
    const McSession session(std::move(req));
    if (spec.pass) {
      return session.run_yield([&](Xoshiro256& rng, std::size_t) {
        auto circuit = spec.factory();
        apply_process_variation(*circuit, rng);
        return spec.pass(*circuit);
      });
    }
    // Only a solution predicate was supplied: classic build-vary-solve
    // around it, so a batch-capable spec still runs under any strategy.
    return session.run_yield([&](Xoshiro256& rng, std::size_t) {
      auto circuit = spec.factory();
      apply_process_variation(*circuit, rng);
      const spice::DcResult r = spice::dc_operating_point(*circuit, dc);
      return spec.solution_pass(*circuit, r.x());
    });
  }

  // Batched path: compile the topology once, solve lanes in lockstep.
  // A lockstep solve never spans scheduler ranges, so wider lanes than the
  // chunk size would just sit idle.
  spice::CompiledCircuit::Options options = spec.compile;
  options.max_lanes = std::max<std::size_t>(
      1, std::min(options.max_lanes, std::max<std::size_t>(1, req.chunk)));

  spice::CompiledCircuit compiled(spec.factory(), options);

  // Per-MOSFET samplers hoisted out of the sample loop — built in
  // circuit.mosfets() order, the exact draw order of
  // apply_process_variation, so sample i sees the identical mismatch.
  std::vector<MismatchSampler> samplers;
  for (const spice::Mosfet* m : compiled.circuit().mosfets()) {
    samplers.emplace_back(pelgrom_, m->params().w_um, m->params().l_um);
  }

  // One private workspace per scheduler worker (same worker-count rule as
  // the session, so every span.worker has a workspace).
  const std::size_t worker_count = std::min<std::size_t>(
      resolve_threads(req.threads, req.thread_budget),
      std::max<std::size_t>(req.n, 1));
  std::vector<std::unique_ptr<spice::CompiledCircuit::Workspace>> workspaces;
  workspaces.reserve(worker_count);
  for (std::size_t w = 0; w < worker_count; ++w) {
    workspaces.push_back(compiled.make_workspace(spec.factory()));
  }

  const std::uint64_t seed = config_.seed;
  const McBatchEval batch = [&](const McBatchSpan& span) {
    auto& ws = *workspaces[span.worker];
    for (std::size_t lo = span.lo; lo < span.hi;) {
      const std::size_t lanes = std::min(ws.max_lanes(), span.hi - lo);
      for (std::size_t lane = 0; lane < lanes; ++lane) {
        Xoshiro256 rng(derive_seed(seed, {lo + lane}));
        for (std::size_t m = 0; m < samplers.size(); ++m) {
          const MismatchSample s = samplers[m].sample_single(rng);
          ws.set_lane_variation(lane, m, {s.dvt, s.dbeta_rel});
        }
      }
      ws.solve_dc(lanes);
      for (std::size_t lane = 0; lane < lanes; ++lane) {
        span.values[lo - span.lo + lane] =
            spec.solution_pass(ws.circuit(), ws.lane_solution(lane)) ? 1.0
                                                                     : 0.0;
      }
      lo += lanes;
    }
  };

  // Classic per-sample fallback for spans the batched evaluator throws on:
  // same mismatch stream, same spec, classic solver configuration.
  const McPredicate scalar = [&](Xoshiro256& rng, std::size_t) {
    auto circuit = spec.factory();
    apply_process_variation(*circuit, rng);
    const spice::DcResult r = spice::dc_operating_point(*circuit, dc);
    return spec.solution_pass(*circuit, r.x());
  };

  const McSession session(std::move(req));
  McResult result = session.run_yield_batch(batch, scalar);
  if (spec.stats_out != nullptr) {
    spice::SolverStats total = compiled.compile_stats();
    for (const auto& ws : workspaces) total = total + ws->stats();
    *spec.stats_out = total;
  }
  return result;
}

McResult ReliabilitySimulator::run_yield_batched(
    const CircuitFactory& factory, const CompiledSpecPredicate& pass,
    McRequest req, spice::CompiledCircuit::Options options,
    spice::SolverStats* stats_out) const {
  if (req.run_label.empty()) req.run_label = "reliability.yield_batched";
  req.eval_mode = McEvalMode::kBatched;
  YieldSpec spec;
  spec.factory = factory;
  spec.solution_pass = pass;
  spec.compile = options;
  spec.stats_out = stats_out;
  return run_yield(spec, std::move(req));
}

McResult ReliabilitySimulator::run_lifetime_yield(
    const CircuitFactory& factory, const SpecPredicate& pass, McRequest req,
    const aging::StressRunner& runner) const {
  req.seed = config_.seed;
  if (req.run_label.empty()) req.run_label = "reliability.lifetime_yield";
  const McSession session(std::move(req));
  return session.run_yield([&](Xoshiro256& rng, std::size_t index) {
    auto circuit = factory();
    apply_process_variation(*circuit, rng);
    aging::AgingOptions options;
    options.mission = config_.mission;
    // Per-sample aging seed so stochastic mechanisms (TDDB spot, EM spread)
    // vary across virtual fabrications.
    options.seed = derive_seed(config_.seed, {0xA6E, index});
    options.refresh_stress_each_epoch = config_.refresh_stress_each_epoch;
    // The engine is built per sample: it is cheap next to the circuit
    // solves and keeps samples free of shared state under parallel runs.
    build_engine().age(*circuit, options, runner,
                       config_.enable_em ? &em_ : nullptr);
    return pass(*circuit);
  });
}

McResult ReliabilitySimulator::run_metric(const CircuitFactory& factory,
                                          const CircuitMetric& metric,
                                          McRequest req) const {
  req.seed = config_.seed;
  if (req.run_label.empty()) req.run_label = "reliability.metric";
  const McSession session(std::move(req));
  return session.run_metric([&](Xoshiro256& rng, std::size_t) {
    auto circuit = factory();
    apply_process_variation(*circuit, rng);
    return metric(*circuit);
  });
}

namespace {

McRequest serial_request(std::size_t n) {
  McRequest req;
  req.n = n;
  req.threads = 1;
  return req;
}

}  // namespace

YieldEstimate ReliabilitySimulator::yield(const CircuitFactory& factory,
                                          const SpecPredicate& pass,
                                          std::size_t n) const {
  return run_yield(factory, pass, serial_request(n)).estimate;
}

YieldEstimate ReliabilitySimulator::lifetime_yield(
    const CircuitFactory& factory, const SpecPredicate& pass, std::size_t n,
    const aging::StressRunner& runner) const {
  return run_lifetime_yield(factory, pass, serial_request(n), runner).estimate;
}

double ReliabilitySimulator::estimate_lifetime_years(
    const CircuitFactory& factory, const SpecPredicate& pass,
    double max_years, double tolerance_years,
    const aging::StressRunner& runner) const {
  RELSIM_REQUIRE(max_years > 0.0, "lifetime horizon must be positive");
  RELSIM_REQUIRE(tolerance_years > 0.0, "tolerance must be positive");
  const aging::AgingEngine engine = build_engine();

  auto passes_after = [&](double years) {
    auto circuit = factory();
    if (years > 0.0) {
      aging::AgingOptions options;
      options.mission = config_.mission;
      options.mission.years = years;
      options.seed = config_.seed;
      options.refresh_stress_each_epoch = config_.refresh_stress_each_epoch;
      engine.age(*circuit, options, runner,
                 config_.enable_em ? &em_ : nullptr);
    }
    return pass(*circuit);
  };

  if (!passes_after(0.0)) return 0.0;
  if (passes_after(max_years)) return max_years;
  double lo = 0.0, hi = max_years;
  while (hi - lo > tolerance_years) {
    const double mid = 0.5 * (lo + hi);
    (passes_after(mid) ? lo : hi) = mid;
  }
  return 0.5 * (lo + hi);
}

std::vector<double> ReliabilitySimulator::metric_distribution(
    const CircuitFactory& factory, const CircuitMetric& metric,
    std::size_t n) const {
  return std::move(run_metric(factory, metric, serial_request(n)).values);
}

}  // namespace relsim
