// SRAM 6T bitcell workload — the paper's flagship high-sigma yield victim.
//
// An SRAM array multiplies one cell's failure probability by millions of
// instances, so the cell must be certified at 5-6 sigma (Sec. 2 of the
// paper: memories are where the Pelgrom mismatch budget bites first).
// This module packages the cell as a reusable workload:
//
//  * parameterized 6T netlists (single cell, loop-broken metric harnesses,
//    a rows x cols array) on the level-1 MOS model;
//  * the three classic cell metrics — read static noise margin (Seevinck
//    butterfly curves), bitline write margin (sweep-until-flip), and read
//    access time (transient bitline discharge);
//  * a loop-broken read-disturb margin with a UNIQUE DC solution, usable
//    both as a per-sample metric and as a batched `solution_pass`
//    predicate for ReliabilitySimulator::run_yield;
//  * sample-point plumbing: every cell transistor draws its Pelgrom
//    mismatch from two tracked normal dimensions of an McSamplePoint, so
//    an importance-sampling mean shift lands on exactly those dimensions;
//  * a finite-difference linearization around the nominal cell that
//    yields an EXACT Phi(-tau) ground truth for the linearized metric —
//    the acceptance pin of bench_sram.
#pragma once

#include <array>
#include <memory>

#include "core/reliability_sim.h"
#include "spice/circuit.h"
#include "tech/tech.h"
#include "variability/mc_session.h"

namespace relsim::workloads {

/// Cell geometry and operating point. Defaults give the conventional
/// read-stable cell ratios (pull-down strongest, pull-up weakest) at the
/// tech node's minimum-ish length.
struct Sram6TParams {
  const TechNode* tech = nullptr;  ///< required
  double vdd = 0.0;                ///< supply; 0 = tech nominal

  double w_pd_um = 0.20;  ///< pull-down NMOS width
  double l_pd_um = 0.07;
  double w_ax_um = 0.14;  ///< access NMOS width
  double l_ax_um = 0.07;
  double w_pu_um = 0.10;  ///< pull-up PMOS width
  double l_pu_um = 0.07;

  double c_bl_ff = 5.0;  ///< bitline capacitance for access-time runs, fF

  double supply() const;
  void validate() const;
};

/// Canonical device order of every netlist this module builds: array
/// index into Sram6TVariation::device, Circuit::mosfets() order of
/// make_sram6t_cell, and the normal-dimension blocks of sample-driven
/// runs (device k owns dims 2k = dVT, 2k+1 = dbeta).
enum Sram6TDevice : unsigned {
  kSramPdl = 0,  ///< left pull-down NMOS
  kSramAxl,      ///< left access NMOS
  kSramPul,      ///< left pull-up PMOS
  kSramPdr,      ///< right pull-down NMOS
  kSramAxr,      ///< right access NMOS
  kSramPur,      ///< right pull-up PMOS
};
inline constexpr std::size_t kSram6TDeviceCount = 6;
extern const char* const kSram6TDeviceNames[kSram6TDeviceCount];

/// Tracked normal dimensions of a sample-driven cell evaluation.
inline constexpr unsigned kSram6TDims = 2 * kSram6TDeviceCount;

/// One fabricated cell's mismatch, in canonical device order.
struct Sram6TVariation {
  std::array<spice::MosVariation, kSram6TDeviceCount> device{};
};

/// Maps kSram6TDims standard normals through the tech node's Pelgrom
/// sigmas (single-device sigma, geometry of the addressed transistor):
/// z[2k] scales dVT of device k, z[2k+1] its relative dbeta.
Sram6TVariation variation_from_normals(
    const Sram6TParams& params, const std::array<double, kSram6TDims>& z);

/// Draws the cell mismatch from the point's tracked normals (dims
/// 0..kSram6TDims-1, canonical order) — the hook importance-sampling mean
/// shifts act on.
Sram6TVariation variation_from_point(const Sram6TParams& params,
                                     McSamplePoint& point);

/// Applies `var` to every cell transistor the circuit contains, matched
/// by canonical device name (array instances use name prefixes and are
/// not touched). Unknown MOSFET names are left alone.
void apply_sram6t_variation(spice::Circuit& circuit,
                            const Sram6TVariation& var);

// ---------------------------------------------------------------------------
// Netlists

/// The full cross-coupled cell with ideal rail/wordline/bitline sources
/// ("VDD", "WL", "BL", "BLB"; internal nodes "q"/"qb"). Bistable — DC
/// analyses need a state-selecting initial guess.
std::unique_ptr<spice::Circuit> make_sram6t_cell(const Sram6TParams& params,
                                                 double wl_v, double bl_v,
                                                 double blb_v);

/// Read-disturb harness with the feedback loop broken at the "1" node: qb
/// is forced to VDD, so "q" settles at the read-disturb divider level and
/// node "sense" carries the right inverter's response to it (both halves
/// under worst-case read bias, all six transistors in the signal path).
/// Single-valued — safe for cold-start Newton and batched lanes.
std::unique_ptr<spice::Circuit> make_read_disturb_cell(
    const Sram6TParams& params);

/// A rows x cols cell array in hold state: per-row wordlines "wl<r>" (at
/// 0 V), per-column bitline pairs "bl<c>"/"blb<c>" (precharged to VDD),
/// cell devices named "<dev>_r<r>c<c>" in canonical per-cell order.
/// Netlist-scale workload for solver and EM/leakage experiments.
std::unique_ptr<spice::Circuit> make_sram_array(const Sram6TParams& params,
                                                unsigned rows, unsigned cols);

// ---------------------------------------------------------------------------
// Cell metrics (var == nullptr evaluates the nominal cell)

/// Read static noise margin (volts): Seevinck butterfly construction from
/// the two loop-broken read VTCs, rotated 45 degrees; the returned value
/// is the side of the smaller maximal square (<= 0 = unstable cell).
double read_snm(const Sram6TParams& params,
                const Sram6TVariation* var = nullptr,
                unsigned sweep_points = 101);

/// Bitline write margin (volts): with the cell latched at q = 1 and the
/// wordline up, BL is swept from VDD toward 0; the margin is the BL
/// voltage at which the cell flips (higher = easier write; 0 = the sweep
/// never flips the cell, a write failure).
double write_margin(const Sram6TParams& params,
                    const Sram6TVariation* var = nullptr,
                    unsigned sweep_points = 81);

/// Read access time (seconds): transient bitline discharge through the
/// access/pull-down pair after the wordline rises, measured from the WL
/// half-swing crossing to a 10%-of-VDD bitline droop. +inf when the
/// bitline never develops the sense differential.
double access_time(const Sram6TParams& params,
                   const Sram6TVariation* var = nullptr);

/// Read-disturb margin (volts): V("sense") - VDD/2 of the loop-broken
/// harness (> 0 = the disturbed cell still reads as a 0). The overload on
/// a solved DC solution is the batched-path form.
double read_disturb_margin(const Sram6TParams& params,
                           const Sram6TVariation* var = nullptr);
double read_disturb_margin(const spice::Circuit& circuit, const Vector& x,
                           double supply);

// ---------------------------------------------------------------------------
// Yield plumbing

/// Which cell metric a yield run thresholds on. Read SNM, write margin
/// and read disturb pass when the value is >= the threshold; access time
/// passes when <= (smaller is better).
enum class Sram6TMetric { kReadDisturb, kReadSnm, kWriteMargin, kAccessTime };

const char* to_string(Sram6TMetric metric);

/// Evaluates one metric under a given mismatch.
double eval_metric(const Sram6TParams& params, Sram6TMetric metric,
                   const Sram6TVariation& var);

/// Pass/fail of a metric value against its threshold, honouring the
/// metric's direction.
bool metric_passes(Sram6TMetric metric, double value, double threshold);

/// Point predicate for McSession::run_yield: draws the cell mismatch from
/// the point's tracked normals, evaluates the metric, thresholds it.
/// Works under every sampling strategy; importance shifts must have
/// kSram6TDims components (canonical dimension order).
McPointPredicate sram6t_point_predicate(const Sram6TParams& params,
                                        Sram6TMetric metric,
                                        double threshold);

/// Declarative spec for ReliabilitySimulator::run_yield: read-disturb
/// margin >= margin_min on the loop-broken harness. Batched-capable
/// (solution_pass); the simulator's Pelgrom stream supplies the mismatch,
/// so per-sample and batched paths agree per sample index.
YieldSpec read_disturb_yield_spec(const Sram6TParams& params,
                                  double margin_min = 0.0);

// ---------------------------------------------------------------------------
// Linearization (the bench_sram acceptance pin)

/// First-order model of a metric around the nominal cell:
///   metric(z) ~= nominal + sum_i gradient[i] * z_i
/// over the kSram6TDims standard normals. For the LINEARIZED metric the
/// failure probability at a threshold is exactly Phi(-tau), which pins
/// the importance-sampling estimator to an analytic ground truth.
struct Sram6TLinearization {
  Sram6TMetric metric = Sram6TMetric::kReadDisturb;
  double nominal = 0.0;
  std::array<double, kSram6TDims> gradient{};
  double sigma = 0.0;  ///< |gradient| — the linearized metric's stddev

  /// Distance from nominal to the threshold in metric sigmas, signed so
  /// tau > 0 means the nominal cell passes.
  double tau(double threshold) const;
  /// Exact failure probability of the linearized metric: Phi(-tau).
  double failure_probability(double threshold) const;
  /// Importance-sampling mean shift: `tilt` * tau along the unit failure
  /// direction (tilt 0.5 = the variance-safe half tilt, 1.0 = centred on
  /// the failure boundary).
  std::vector<double> is_shift(double threshold, double tilt = 0.5) const;
  /// The linearized metric value at a normal vector.
  double value(const std::array<double, kSram6TDims>& z) const;
};

/// Central-difference linearization (step `dz` in normalized units; 2 *
/// kSram6TDims + 1 metric evaluations).
Sram6TLinearization linearize(const Sram6TParams& params, Sram6TMetric metric,
                              double dz = 0.5);

/// Point predicate thresholding the LINEARIZED metric — the exact-ground-
/// truth companion of sram6t_point_predicate.
McPointPredicate sram6t_linearized_predicate(const Sram6TLinearization& lin,
                                             double threshold);

}  // namespace relsim::workloads
