#include "workloads/sram.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "spice/analysis.h"
#include "spice/waveform.h"
#include "util/error.h"
#include "util/mathx.h"
#include "variability/pelgrom.h"

namespace relsim::workloads {

const char* const kSram6TDeviceNames[kSram6TDeviceCount] = {
    "PDL", "AXL", "PUL", "PDR", "AXR", "PUR"};

namespace {

constexpr double kSqrt2 = 1.4142135623730951;

/// W/L of one canonical device slot.
void device_geometry(const Sram6TParams& p, std::size_t k, double& w,
                     double& l, bool& pmos) {
  switch (static_cast<Sram6TDevice>(k)) {
    case kSramPdl:
    case kSramPdr:
      w = p.w_pd_um;
      l = p.l_pd_um;
      pmos = false;
      return;
    case kSramAxl:
    case kSramAxr:
      w = p.w_ax_um;
      l = p.l_ax_um;
      pmos = false;
      return;
    case kSramPul:
    case kSramPur:
      w = p.w_pu_um;
      l = p.l_pu_um;
      pmos = true;
      return;
  }
  throw Error("unknown SRAM 6T device index");
}

spice::MosParams device_params(const Sram6TParams& p, std::size_t k) {
  double w = 0.0, l = 0.0;
  bool pmos = false;
  device_geometry(p, k, w, l, pmos);
  return spice::make_mos_params(*p.tech, w, l, pmos);
}

/// Adds the six cell transistors in canonical order, names prefixed/
/// suffixed by `suffix` (empty for a single cell).
void add_cell_devices(spice::Circuit& c, const Sram6TParams& p,
                      spice::NodeId q, spice::NodeId qb, spice::NodeId wl,
                      spice::NodeId bl, spice::NodeId blb, spice::NodeId vdd,
                      const std::string& suffix = {}) {
  const auto name = [&suffix](std::size_t k) {
    return std::string(kSram6TDeviceNames[k]) + suffix;
  };
  c.add_mosfet(name(kSramPdl), q, qb, spice::kGround, spice::kGround,
               device_params(p, kSramPdl));
  c.add_mosfet(name(kSramAxl), bl, wl, q, spice::kGround,
               device_params(p, kSramAxl));
  c.add_mosfet(name(kSramPul), q, qb, vdd, vdd, device_params(p, kSramPul));
  c.add_mosfet(name(kSramPdr), qb, q, spice::kGround, spice::kGround,
               device_params(p, kSramPdr));
  c.add_mosfet(name(kSramAxr), blb, wl, qb, spice::kGround,
               device_params(p, kSramAxr));
  c.add_mosfet(name(kSramPur), qb, q, vdd, vdd, device_params(p, kSramPur));
}

/// One loop-broken read VTC: input `in` drives the inverter gates, the
/// output is loaded by the access device to a VDD bitline (worst-case
/// read bias). `left` selects which canonical device triple is built, so
/// apply_sram6t_variation addresses the right mismatch entries.
std::unique_ptr<spice::Circuit> make_read_vtc_half(const Sram6TParams& p,
                                                   bool left) {
  auto c = std::make_unique<spice::Circuit>();
  const double supply = p.supply();
  const spice::NodeId vdd = c->node("vdd");
  const spice::NodeId in = c->node("in");
  const spice::NodeId out = c->node("out");
  const spice::NodeId wl = c->node("wl");
  const spice::NodeId bl = c->node("bl");
  c->add_vsource("VDD", vdd, spice::kGround, supply);
  c->add_vsource("VIN", in, spice::kGround, 0.0);
  c->add_vsource("WL", wl, spice::kGround, supply);
  c->add_vsource("BL", bl, spice::kGround, supply);
  const std::size_t pd = left ? kSramPdl : kSramPdr;
  const std::size_t ax = left ? kSramAxl : kSramAxr;
  const std::size_t pu = left ? kSramPul : kSramPur;
  c->add_mosfet(kSram6TDeviceNames[pd], out, in, spice::kGround,
                spice::kGround, device_params(p, pd));
  c->add_mosfet(kSram6TDeviceNames[ax], bl, wl, out, spice::kGround,
                device_params(p, ax));
  c->add_mosfet(kSram6TDeviceNames[pu], out, in, vdd, vdd,
                device_params(p, pu));
  return c;
}

/// A curve rotated into the 45-degree frame xr = (x - y)/sqrt(2),
/// yr = (x + y)/sqrt(2), sorted by xr. Both butterfly branches are
/// single-valued in xr (a falling VTC has d(x - y)/dx > 0 everywhere).
struct RotatedCurve {
  std::vector<double> xr;
  std::vector<double> yr;

  void add(double x, double y) {
    xr.push_back((x - y) / kSqrt2);
    yr.push_back((x + y) / kSqrt2);
  }
  void sort_ascending() {
    if (!xr.empty() && xr.front() > xr.back()) {
      std::reverse(xr.begin(), xr.end());
      std::reverse(yr.begin(), yr.end());
    }
  }
  double interp(double u) const {
    const auto it = std::lower_bound(xr.begin(), xr.end(), u);
    if (it == xr.begin()) return yr.front();
    if (it == xr.end()) return yr.back();
    const std::size_t i = static_cast<std::size_t>(it - xr.begin());
    const double t = (u - xr[i - 1]) / (xr[i] - xr[i - 1]);
    return yr[i - 1] + t * (yr[i] - yr[i - 1]);
  }
};

}  // namespace

double Sram6TParams::supply() const {
  RELSIM_REQUIRE(tech != nullptr, "Sram6TParams needs a technology node");
  return vdd > 0.0 ? vdd : tech->vdd;
}

void Sram6TParams::validate() const {
  RELSIM_REQUIRE(tech != nullptr, "Sram6TParams needs a technology node");
  RELSIM_REQUIRE(w_pd_um > 0.0 && l_pd_um > 0.0 && w_ax_um > 0.0 &&
                     l_ax_um > 0.0 && w_pu_um > 0.0 && l_pu_um > 0.0,
                 "SRAM cell device geometries must be positive");
  RELSIM_REQUIRE(supply() > 0.0, "SRAM cell supply must be positive");
  RELSIM_REQUIRE(c_bl_ff > 0.0, "SRAM bitline capacitance must be positive");
}

Sram6TVariation variation_from_normals(
    const Sram6TParams& params, const std::array<double, kSram6TDims>& z) {
  params.validate();
  const PelgromModel pelgrom(PelgromParams::from_tech(*params.tech));
  Sram6TVariation var;
  for (std::size_t k = 0; k < kSram6TDeviceCount; ++k) {
    double w = 0.0, l = 0.0;
    bool pmos = false;
    device_geometry(params, k, w, l, pmos);
    var.device[k].dvt = pelgrom.sigma_dvt_single(w, l) * z[2 * k];
    var.device[k].dbeta_rel = pelgrom.sigma_dbeta_single(w, l) * z[2 * k + 1];
  }
  return var;
}

Sram6TVariation variation_from_point(const Sram6TParams& params,
                                     McSamplePoint& point) {
  std::array<double, kSram6TDims> z;
  for (unsigned d = 0; d < kSram6TDims; ++d) z[d] = point.normal(d);
  return variation_from_normals(params, z);
}

void apply_sram6t_variation(spice::Circuit& circuit,
                            const Sram6TVariation& var) {
  for (spice::Mosfet* m : circuit.mosfets()) {
    for (std::size_t k = 0; k < kSram6TDeviceCount; ++k) {
      if (m->name() == kSram6TDeviceNames[k]) {
        m->set_variation(var.device[k]);
        break;
      }
    }
  }
}

std::unique_ptr<spice::Circuit> make_sram6t_cell(const Sram6TParams& params,
                                                 double wl_v, double bl_v,
                                                 double blb_v) {
  params.validate();
  auto c = std::make_unique<spice::Circuit>();
  const spice::NodeId vdd = c->node("vdd");
  const spice::NodeId q = c->node("q");
  const spice::NodeId qb = c->node("qb");
  const spice::NodeId wl = c->node("wl");
  const spice::NodeId bl = c->node("bl");
  const spice::NodeId blb = c->node("blb");
  c->add_vsource("VDD", vdd, spice::kGround, params.supply());
  c->add_vsource("WL", wl, spice::kGround, wl_v);
  c->add_vsource("BL", bl, spice::kGround, bl_v);
  c->add_vsource("BLB", blb, spice::kGround, blb_v);
  add_cell_devices(*c, params, q, qb, wl, bl, blb, vdd);
  return c;
}

std::unique_ptr<spice::Circuit> make_read_disturb_cell(
    const Sram6TParams& params) {
  params.validate();
  const double supply = params.supply();
  auto c = std::make_unique<spice::Circuit>();
  const spice::NodeId vdd = c->node("vdd");
  const spice::NodeId qbf = c->node("qbf");  // forced "1" side
  const spice::NodeId q = c->node("q");      // disturbed "0" node
  const spice::NodeId sense = c->node("sense");
  const spice::NodeId wl = c->node("wl");
  const spice::NodeId bl = c->node("bl");
  const spice::NodeId blb = c->node("blb");
  c->add_vsource("VDD", vdd, spice::kGround, supply);
  c->add_vsource("VQB", qbf, spice::kGround, supply);
  c->add_vsource("WL", wl, spice::kGround, supply);
  c->add_vsource("BL", bl, spice::kGround, supply);
  c->add_vsource("BLB", blb, spice::kGround, supply);
  // Left half: the disturbed node. qb is FORCED high, so q settles at the
  // AXL/PDL read divider level — no feedback loop, unique DC solution.
  c->add_mosfet(kSram6TDeviceNames[kSramPdl], q, qbf, spice::kGround,
                spice::kGround, device_params(params, kSramPdl));
  c->add_mosfet(kSram6TDeviceNames[kSramAxl], bl, wl, q, spice::kGround,
                device_params(params, kSramAxl));
  c->add_mosfet(kSram6TDeviceNames[kSramPul], q, qbf, vdd, vdd,
                device_params(params, kSramPul));
  // Right half: responds to the disturbed level under its own read bias
  // (AXR pulls sense toward BLB). sense staying high = the cell still
  // reads as a 0.
  c->add_mosfet(kSram6TDeviceNames[kSramPdr], sense, q, spice::kGround,
                spice::kGround, device_params(params, kSramPdr));
  c->add_mosfet(kSram6TDeviceNames[kSramAxr], blb, wl, sense, spice::kGround,
                device_params(params, kSramAxr));
  c->add_mosfet(kSram6TDeviceNames[kSramPur], sense, q, vdd, vdd,
                device_params(params, kSramPur));
  return c;
}

std::unique_ptr<spice::Circuit> make_sram_array(const Sram6TParams& params,
                                                unsigned rows,
                                                unsigned cols) {
  params.validate();
  RELSIM_REQUIRE(rows >= 1 && cols >= 1,
                 "SRAM array needs at least one row and one column");
  const double supply = params.supply();
  auto c = std::make_unique<spice::Circuit>();
  const spice::NodeId vdd = c->node("vdd");
  c->add_vsource("VDD", vdd, spice::kGround, supply);
  std::vector<spice::NodeId> wls(rows), bls(cols), blbs(cols);
  for (unsigned r = 0; r < rows; ++r) {
    wls[r] = c->node("wl" + std::to_string(r));
    c->add_vsource("WL" + std::to_string(r), wls[r], spice::kGround, 0.0);
  }
  for (unsigned col = 0; col < cols; ++col) {
    bls[col] = c->node("bl" + std::to_string(col));
    blbs[col] = c->node("blb" + std::to_string(col));
    c->add_vsource("BL" + std::to_string(col), bls[col], spice::kGround,
                   supply);
    c->add_vsource("BLB" + std::to_string(col), blbs[col], spice::kGround,
                   supply);
  }
  for (unsigned r = 0; r < rows; ++r) {
    for (unsigned col = 0; col < cols; ++col) {
      const std::string rc =
          "_r" + std::to_string(r) + "c" + std::to_string(col);
      const spice::NodeId q = c->node("q" + rc);
      const spice::NodeId qb = c->node("qb" + rc);
      add_cell_devices(*c, params, q, qb, wls[r], bls[col], blbs[col], vdd,
                       rc);
    }
  }
  return c;
}

double read_snm(const Sram6TParams& params, const Sram6TVariation* var,
                unsigned sweep_points) {
  params.validate();
  RELSIM_REQUIRE(sweep_points >= 8, "read_snm needs >= 8 sweep points");
  const double supply = params.supply();
  const std::vector<double> vins =
      linspace(0.0, supply, static_cast<int>(sweep_points));

  // Two loop-broken read VTCs: out = f(in) for each half-cell.
  std::array<std::vector<double>, 2> vtc;
  for (int half = 0; half < 2; ++half) {
    auto c = make_read_vtc_half(params, half == 0);
    if (var != nullptr) apply_sram6t_variation(*c, *var);
    auto& vin = c->device_as<spice::VoltageSource>("VIN");
    const spice::NodeId out = c->find_node("out");
    for (const spice::DcResult& r : spice::dc_sweep(*c, vin, vins)) {
      vtc[static_cast<std::size_t>(half)].push_back(r.v(out));
    }
  }

  // Seevinck's construction: curve 1 is (in, f1(in)); curve 2 is the
  // MIRRORED second VTC (f2(in), in). Rotated 45 degrees, both are
  // single-valued in xr and the vertical gap at equal xr is the main
  // diagonal of an inscribed square: side = gap / sqrt(2). The two lobes
  // have opposite gap signs; the SNM is the smaller lobe's square.
  RotatedCurve c1, c2;
  for (std::size_t i = 0; i < vins.size(); ++i) {
    c1.add(vins[i], vtc[0][i]);
    c2.add(vtc[1][i], vins[i]);
  }
  c1.sort_ascending();
  c2.sort_ascending();

  const double lo = std::max(c1.xr.front(), c2.xr.front());
  const double hi = std::min(c1.xr.back(), c2.xr.back());
  double gap_pos = -std::numeric_limits<double>::infinity();
  double gap_neg = -std::numeric_limits<double>::infinity();
  const auto consider = [&](double u) {
    if (u < lo || u > hi) return;
    const double g = c1.interp(u) - c2.interp(u);
    gap_pos = std::max(gap_pos, g);
    gap_neg = std::max(gap_neg, -g);
  };
  for (const double u : c1.xr) consider(u);
  for (const double u : c2.xr) consider(u);
  return std::min(gap_pos, gap_neg) / kSqrt2;
}

double write_margin(const Sram6TParams& params, const Sram6TVariation* var,
                    unsigned sweep_points) {
  params.validate();
  RELSIM_REQUIRE(sweep_points >= 8, "write_margin needs >= 8 sweep points");
  const double supply = params.supply();
  auto c = make_sram6t_cell(params, supply, supply, supply);
  if (var != nullptr) apply_sram6t_variation(*c, *var);
  const spice::NodeId q = c->find_node("q");

  // Latch the cell at q = 1 under read bias via a state-selecting guess,
  // then walk BL down with warm starts so Newton follows the state branch
  // until it snaps.
  c->assemble();
  Vector guess(static_cast<std::size_t>(c->unknown_count()), 0.0);
  guess[static_cast<std::size_t>(q - 1)] = supply;
  const spice::DcOptions dc;
  spice::DcResult r = spice::dc_operating_point(*c, dc, guess);
  RELSIM_REQUIRE(r.v(q) > 0.5 * supply,
                 "SRAM write-margin setup failed to latch the q = 1 state");

  auto& bl = c->device_as<spice::VoltageSource>("BL");
  const std::vector<double> values =
      linspace(supply, 0.0, static_cast<int>(sweep_points));
  Vector x = r.x();
  double prev_bl = supply;
  double prev_q = r.v(q);
  for (const double v : values) {
    bl.set_dc(v);
    r = spice::dc_operating_point(*c, dc, x);
    x = r.x();
    const double vq = r.v(q);
    if (vq < 0.5 * supply) {
      // Interpolate the BL voltage where V(q) crossed half-supply.
      const double frac = (prev_q - 0.5 * supply) / (prev_q - vq);
      return prev_bl + frac * (v - prev_bl);
    }
    prev_bl = v;
    prev_q = vq;
  }
  return 0.0;  // the sweep reached BL = 0 without flipping: write failure
}

double access_time(const Sram6TParams& params, const Sram6TVariation* var) {
  params.validate();
  const double supply = params.supply();
  const double t_wl = 50e-12;    // wordline rise start
  const double t_rise = 20e-12;  // wordline edge
  const double droop = 0.1 * supply;

  auto c = std::make_unique<spice::Circuit>();
  const spice::NodeId vdd = c->node("vdd");
  const spice::NodeId q = c->node("q");
  const spice::NodeId qb = c->node("qb");
  const spice::NodeId wl = c->node("wl");
  const spice::NodeId bl = c->node("bl");
  const spice::NodeId blb = c->node("blb");
  c->add_vsource("VDD", vdd, spice::kGround, supply);
  c->add_vsource("WL", wl, spice::kGround,
                 std::make_unique<spice::PulseWaveform>(
                     0.0, supply, t_wl, t_rise, t_rise, 1e-9, 2e-9));
  // Precharged floating bitlines: the read discharges C_BL through the
  // AXL/PDL pair (the cell stores q = 0).
  c->add_capacitor("CBL", bl, spice::kGround, params.c_bl_ff * 1e-15);
  c->add_capacitor("CBLB", blb, spice::kGround, params.c_bl_ff * 1e-15);
  add_cell_devices(*c, params, q, qb, wl, bl, blb, vdd);
  if (var != nullptr) apply_sram6t_variation(*c, *var);

  spice::TransientOptions opt;
  opt.dt = 1e-12;
  opt.t_stop = t_wl + 500e-12;
  opt.use_initial_conditions = true;
  opt.initial_conditions = {{vdd, supply}, {q, 0.0},     {qb, supply},
                            {wl, 0.0},     {bl, supply}, {blb, supply}};
  const spice::TransientResult tr = spice::transient_analysis(*c, opt, {bl});

  const std::vector<double>& t = tr.time();
  const std::vector<double>& v_bl = tr.node(bl);
  const double v_sense = supply - droop;
  for (std::size_t i = 1; i < t.size(); ++i) {
    if (v_bl[i] <= v_sense) {
      const double frac = (v_bl[i - 1] - v_sense) / (v_bl[i - 1] - v_bl[i]);
      const double t_cross = t[i - 1] + frac * (t[i] - t[i - 1]);
      return t_cross - (t_wl + 0.5 * t_rise);
    }
  }
  return std::numeric_limits<double>::infinity();
}

double read_disturb_margin(const Sram6TParams& params,
                           const Sram6TVariation* var) {
  auto c = make_read_disturb_cell(params);
  if (var != nullptr) apply_sram6t_variation(*c, *var);
  const spice::DcResult r = spice::dc_operating_point(*c);
  return r.v(c->find_node("sense")) - 0.5 * params.supply();
}

double read_disturb_margin(const spice::Circuit& circuit, const Vector& x,
                           double supply) {
  const spice::NodeId sense = circuit.find_node("sense");
  return x[static_cast<std::size_t>(sense - 1)] - 0.5 * supply;
}

const char* to_string(Sram6TMetric metric) {
  switch (metric) {
    case Sram6TMetric::kReadDisturb:
      return "read-disturb";
    case Sram6TMetric::kReadSnm:
      return "read-snm";
    case Sram6TMetric::kWriteMargin:
      return "write-margin";
    case Sram6TMetric::kAccessTime:
      return "access-time";
  }
  return "unknown";
}

double eval_metric(const Sram6TParams& params, Sram6TMetric metric,
                   const Sram6TVariation& var) {
  switch (metric) {
    case Sram6TMetric::kReadDisturb:
      return read_disturb_margin(params, &var);
    case Sram6TMetric::kReadSnm:
      return read_snm(params, &var);
    case Sram6TMetric::kWriteMargin:
      return write_margin(params, &var);
    case Sram6TMetric::kAccessTime:
      return access_time(params, &var);
  }
  throw Error("unknown SRAM 6T metric");
}

bool metric_passes(Sram6TMetric metric, double value, double threshold) {
  return metric == Sram6TMetric::kAccessTime ? value <= threshold
                                             : value >= threshold;
}

McPointPredicate sram6t_point_predicate(const Sram6TParams& params,
                                        Sram6TMetric metric,
                                        double threshold) {
  params.validate();
  return [params, metric, threshold](McSamplePoint& point) {
    const Sram6TVariation var = variation_from_point(params, point);
    return metric_passes(metric, eval_metric(params, metric, var), threshold);
  };
}

YieldSpec read_disturb_yield_spec(const Sram6TParams& params,
                                  double margin_min) {
  params.validate();
  const double supply = params.supply();
  YieldSpec spec;
  spec.factory = [params] { return make_read_disturb_cell(params); };
  spec.solution_pass = [supply, margin_min](const spice::Circuit& circuit,
                                            const Vector& x) {
    return read_disturb_margin(circuit, x, supply) >= margin_min;
  };
  return spec;
}

double Sram6TLinearization::tau(double threshold) const {
  RELSIM_REQUIRE(sigma > 0.0,
                 "SRAM linearization has zero sensitivity to mismatch");
  const double sign = metric == Sram6TMetric::kAccessTime ? -1.0 : 1.0;
  return sign * (nominal - threshold) / sigma;
}

double Sram6TLinearization::failure_probability(double threshold) const {
  return normal_cdf(-tau(threshold));
}

std::vector<double> Sram6TLinearization::is_shift(double threshold,
                                                  double tilt) const {
  const double t = tau(threshold);
  const double sign = metric == Sram6TMetric::kAccessTime ? -1.0 : 1.0;
  std::vector<double> shift(kSram6TDims, 0.0);
  for (unsigned d = 0; d < kSram6TDims; ++d) {
    // Unit failure direction: the metric moves toward the threshold.
    shift[d] = -sign * tilt * t * gradient[d] / sigma;
  }
  return shift;
}

double Sram6TLinearization::value(
    const std::array<double, kSram6TDims>& z) const {
  double v = nominal;
  for (unsigned d = 0; d < kSram6TDims; ++d) v += gradient[d] * z[d];
  return v;
}

Sram6TLinearization linearize(const Sram6TParams& params, Sram6TMetric metric,
                              double dz) {
  params.validate();
  RELSIM_REQUIRE(dz > 0.0, "linearization step must be positive");
  Sram6TLinearization lin;
  lin.metric = metric;
  std::array<double, kSram6TDims> z{};
  lin.nominal = eval_metric(params, metric, variation_from_normals(params, z));
  RELSIM_REQUIRE(std::isfinite(lin.nominal),
                 "SRAM linearization: nominal metric is not finite");
  double norm_sq = 0.0;
  for (unsigned d = 0; d < kSram6TDims; ++d) {
    z[d] = dz;
    const double up =
        eval_metric(params, metric, variation_from_normals(params, z));
    z[d] = -dz;
    const double dn =
        eval_metric(params, metric, variation_from_normals(params, z));
    z[d] = 0.0;
    RELSIM_REQUIRE(std::isfinite(up) && std::isfinite(dn),
                   "SRAM linearization: perturbed metric is not finite");
    lin.gradient[d] = (up - dn) / (2.0 * dz);
    norm_sq += lin.gradient[d] * lin.gradient[d];
  }
  lin.sigma = std::sqrt(norm_sq);
  return lin;
}

McPointPredicate sram6t_linearized_predicate(const Sram6TLinearization& lin,
                                             double threshold) {
  return [lin, threshold](McSamplePoint& point) {
    std::array<double, kSram6TDims> z;
    for (unsigned d = 0; d < kSram6TDims; ++d) z[d] = point.normal(d);
    return metric_passes(lin.metric, lin.value(z), threshold);
  };
}

}  // namespace relsim::workloads
