// Waveform post-processing for transient results.
//
// The EMC analyses (Figs. 3-4) extract the DC operating-point shift as the
// time-average of an output quantity over the settled tail of a transient;
// the knobs-and-monitors bench extracts ring-oscillator frequency from zero
// crossings. These helpers operate on the (possibly non-uniformly sampled)
// time/value vectors produced by transient_analysis().
#pragma once

#include <vector>

namespace relsim::spice {

/// Trapezoidal time-average of `values` over [t_begin, t_end] (clamped to
/// the record range). Requires at least two samples in the window.
double time_average(const std::vector<double>& time,
                    const std::vector<double>& values, double t_begin,
                    double t_end);

/// RMS of `values` over [t_begin, t_end] (trapezoidal on the square).
double time_rms(const std::vector<double>& time,
                const std::vector<double>& values, double t_begin,
                double t_end);

/// Peak-to-peak over the window.
double peak_to_peak(const std::vector<double>& time,
                    const std::vector<double>& values, double t_begin,
                    double t_end);

/// Fundamental frequency estimated from rising zero crossings of
/// (value - midlevel) inside the window; returns 0 when fewer than two
/// crossings are found. Crossing times are linearly interpolated.
double estimate_frequency(const std::vector<double>& time,
                          const std::vector<double>& values, double t_begin,
                          double t_end);

}  // namespace relsim::spice
