#include "spice/elements.h"

#include <cmath>

#include "util/error.h"
#include "util/units.h"

namespace relsim::spice {

// ---------------------------------------------------------------------------
// Resistor

Resistor::Resistor(std::string name, NodeId a, NodeId b, double resistance)
    : Device(std::move(name)), a_(a), b_(b), resistance_(resistance) {
  RELSIM_REQUIRE(resistance > 0.0, "resistance must be positive");
  RELSIM_REQUIRE(a != b, "resistor terminals must differ");
}

void Resistor::set_resistance(double r) {
  RELSIM_REQUIRE(r > 0.0, "resistance must be positive");
  resistance_ = r;
}

void Resistor::stamp(StampArgs& args) {
  args.add_conductance(a_, b_, 1.0 / resistance_);
}

void Resistor::stamp_ac(AcStampArgs& args) {
  args.add_admittance(a_, b_, Complex(1.0 / resistance_, 0.0));
}

double Resistor::current(const Vector& x) const {
  return (voltage(x, a_) - voltage(x, b_)) / resistance_;
}

void Resistor::accept_step(const Vector& x, double /*time*/, double dt) {
  if (geometry_.has_value() && dt > 0.0) stress_.add(current(x), dt);
}

void Resistor::record_stress_point(const Vector& x, double weight) {
  if (geometry_.has_value()) stress_.add(current(x), weight);
}

// ---------------------------------------------------------------------------
// Capacitor

Capacitor::Capacitor(std::string name, NodeId a, NodeId b, double capacitance)
    : Device(std::move(name)), a_(a), b_(b), capacitance_(capacitance) {
  RELSIM_REQUIRE(capacitance > 0.0, "capacitance must be positive");
  RELSIM_REQUIRE(a != b, "capacitor terminals must differ");
}

void Capacitor::set_capacitance(double c) {
  RELSIM_REQUIRE(c > 0.0, "capacitance must be positive");
  capacitance_ = c;
}

void Capacitor::stamp_ac(AcStampArgs& args) {
  args.add_admittance(a_, b_, Complex(0.0, args.omega * capacitance_));
}

void Capacitor::begin_analysis(AnalysisMode mode, const Vector& x) {
  if (mode == AnalysisMode::kTransient) {
    v_prev_ = voltage(x, a_) - voltage(x, b_);
    i_prev_ = 0.0;
  }
}

void Capacitor::stamp(StampArgs& args) {
  if (args.mode != AnalysisMode::kTransient) return;  // open in DC
  integrator_ = args.integrator;
  dt_pending_ = args.dt;
  // Companion model: BE   i = (C/dt)(v - v_prev)
  //                  TRAP i = (2C/dt)(v - v_prev) - i_prev
  const bool trap = args.integrator == Integrator::kTrapezoidal;
  const double geq = (trap ? 2.0 : 1.0) * capacitance_ / args.dt;
  const double history = trap ? geq * v_prev_ + i_prev_ : geq * v_prev_;
  args.add_conductance(a_, b_, geq);
  // i_ab = geq*v - history: the constant part enters the node equations as
  // a current source of value `history` flowing from b to a.
  args.add_current(b_, a_, history);
}

void Capacitor::accept_step(const Vector& x, double /*time*/, double dt) {
  if (dt <= 0.0) return;
  const bool trap = integrator_ == Integrator::kTrapezoidal;
  const double geq = (trap ? 2.0 : 1.0) * capacitance_ / dt;
  const double v = voltage(x, a_) - voltage(x, b_);
  const double i = trap ? geq * (v - v_prev_) - i_prev_ : geq * (v - v_prev_);
  v_prev_ = v;
  i_prev_ = i;
}

// ---------------------------------------------------------------------------
// Inductor

Inductor::Inductor(std::string name, NodeId a, NodeId b, double inductance)
    : Device(std::move(name)), a_(a), b_(b), inductance_(inductance) {
  RELSIM_REQUIRE(inductance > 0.0, "inductance must be positive");
  RELSIM_REQUIRE(a != b, "inductor terminals must differ");
}

void Inductor::begin_analysis(AnalysisMode mode, const Vector& x) {
  if (mode == AnalysisMode::kTransient) {
    i_prev_ = current(x);
    v_prev_ = voltage(x, a_) - voltage(x, b_);
  }
}

void Inductor::stamp(StampArgs& args) {
  const int p = StampArgs::unknown_of(a_);
  const int m = StampArgs::unknown_of(b_);
  // Node rows: branch current leaves a, enters b.
  args.add_jac(p, branch_, 1.0);
  args.add_jac(m, branch_, -1.0);
  // Branch row: v(a) - v(b) = L di/dt  (0 in DC: a short).
  args.add_jac(branch_, p, 1.0);
  args.add_jac(branch_, m, -1.0);
  if (args.mode == AnalysisMode::kTransient) {
    // BE:   v = (L/dt)(i - i_prev)          -> v - (L/dt) i = -(L/dt) i_prev
    // TRAP: v = (2L/dt)(i - i_prev) - v_prev
    const bool trap = args.integrator == Integrator::kTrapezoidal;
    const double req = (trap ? 2.0 : 1.0) * inductance_ / args.dt;
    args.add_jac(branch_, branch_, -req);
    args.add_rhs(branch_, -req * i_prev_ - (trap ? v_prev_ : 0.0));
  }
}

void Inductor::stamp_ac(AcStampArgs& args) {
  const int p = StampArgs::unknown_of(a_);
  const int m = StampArgs::unknown_of(b_);
  args.add_jac(p, branch_, Complex(1.0, 0.0));
  args.add_jac(m, branch_, Complex(-1.0, 0.0));
  // v(a) - v(b) - jwL * i = 0.
  args.add_jac(branch_, p, Complex(1.0, 0.0));
  args.add_jac(branch_, m, Complex(-1.0, 0.0));
  args.add_jac(branch_, branch_, Complex(0.0, -args.omega * inductance_));
}

void Inductor::accept_step(const Vector& x, double /*time*/, double dt) {
  if (dt <= 0.0) return;
  i_prev_ = current(x);
  v_prev_ = voltage(x, a_) - voltage(x, b_);
}

double Inductor::current(const Vector& x) const {
  RELSIM_REQUIRE(branch_ >= 0, "inductor not yet assembled");
  return x[static_cast<std::size_t>(branch_)];
}

// ---------------------------------------------------------------------------
// VoltageSource

VoltageSource::VoltageSource(std::string name, NodeId plus, NodeId minus,
                             std::unique_ptr<Waveform> waveform)
    : Device(std::move(name)),
      plus_(plus),
      minus_(minus),
      waveform_(std::move(waveform)) {
  RELSIM_REQUIRE(waveform_ != nullptr, "voltage source needs a waveform");
  RELSIM_REQUIRE(plus != minus, "voltage source terminals must differ");
}

void VoltageSource::set_waveform(std::unique_ptr<Waveform> waveform) {
  RELSIM_REQUIRE(waveform != nullptr, "voltage source needs a waveform");
  waveform_ = std::move(waveform);
}

void VoltageSource::set_dc(double value) {
  waveform_ = std::make_unique<DcWaveform>(value);
}

void VoltageSource::stamp(StampArgs& args) {
  const double value = (args.mode == AnalysisMode::kDcOp
                            ? waveform_->dc_value()
                            : waveform_->value(args.time)) *
                       args.source_scale;
  const int p = StampArgs::unknown_of(plus_);
  const int m = StampArgs::unknown_of(minus_);
  // Branch current leaves the + node, enters the - node.
  args.add_jac(p, branch_, 1.0);
  args.add_jac(m, branch_, -1.0);
  // Branch equation: v(plus) - v(minus) = value.
  args.add_jac(branch_, p, 1.0);
  args.add_jac(branch_, m, -1.0);
  args.add_rhs(branch_, value);
}

void VoltageSource::stamp_ac(AcStampArgs& args) {
  const int p = StampArgs::unknown_of(plus_);
  const int m = StampArgs::unknown_of(minus_);
  args.add_jac(p, branch_, Complex(1.0, 0.0));
  args.add_jac(m, branch_, Complex(-1.0, 0.0));
  args.add_jac(branch_, p, Complex(1.0, 0.0));
  args.add_jac(branch_, m, Complex(-1.0, 0.0));
  args.add_rhs(branch_, Complex(ac_magnitude_, 0.0));
}

double VoltageSource::current(const Vector& x) const {
  RELSIM_REQUIRE(branch_ >= 0, "voltage source not yet assembled");
  return x[static_cast<std::size_t>(branch_)];
}

// ---------------------------------------------------------------------------
// CurrentSource

CurrentSource::CurrentSource(std::string name, NodeId from, NodeId to,
                             std::unique_ptr<Waveform> waveform)
    : Device(std::move(name)),
      from_(from),
      to_(to),
      waveform_(std::move(waveform)) {
  RELSIM_REQUIRE(waveform_ != nullptr, "current source needs a waveform");
  RELSIM_REQUIRE(from != to, "current source terminals must differ");
}

void CurrentSource::set_waveform(std::unique_ptr<Waveform> waveform) {
  RELSIM_REQUIRE(waveform != nullptr, "current source needs a waveform");
  waveform_ = std::move(waveform);
}

void CurrentSource::set_dc(double value) {
  waveform_ = std::make_unique<DcWaveform>(value);
}

void CurrentSource::stamp(StampArgs& args) {
  const double value = (args.mode == AnalysisMode::kDcOp
                            ? waveform_->dc_value()
                            : waveform_->value(args.time)) *
                       args.source_scale;
  args.add_current(from_, to_, value);
}

void CurrentSource::stamp_ac(AcStampArgs& args) {
  args.add_current(from_, to_, Complex(ac_magnitude_, 0.0));
}

// ---------------------------------------------------------------------------
// Vcvs

Vcvs::Vcvs(std::string name, NodeId plus, NodeId minus, NodeId control_plus,
           NodeId control_minus, double gain)
    : Device(std::move(name)),
      plus_(plus),
      minus_(minus),
      cp_(control_plus),
      cm_(control_minus),
      gain_(gain) {
  RELSIM_REQUIRE(plus != minus, "VCVS output terminals must differ");
}

void Vcvs::stamp(StampArgs& args) {
  const int p = StampArgs::unknown_of(plus_);
  const int m = StampArgs::unknown_of(minus_);
  const int cp = StampArgs::unknown_of(cp_);
  const int cm = StampArgs::unknown_of(cm_);
  args.add_jac(p, branch_, 1.0);
  args.add_jac(m, branch_, -1.0);
  // Branch equation: v(plus) - v(minus) - gain*(v(cp) - v(cm)) = 0.
  args.add_jac(branch_, p, 1.0);
  args.add_jac(branch_, m, -1.0);
  args.add_jac(branch_, cp, -gain_);
  args.add_jac(branch_, cm, gain_);
}

void Vcvs::stamp_ac(AcStampArgs& args) {
  const int p = StampArgs::unknown_of(plus_);
  const int m = StampArgs::unknown_of(minus_);
  const int cp = StampArgs::unknown_of(cp_);
  const int cm = StampArgs::unknown_of(cm_);
  args.add_jac(p, branch_, Complex(1.0, 0.0));
  args.add_jac(m, branch_, Complex(-1.0, 0.0));
  args.add_jac(branch_, p, Complex(1.0, 0.0));
  args.add_jac(branch_, m, Complex(-1.0, 0.0));
  args.add_jac(branch_, cp, Complex(-gain_, 0.0));
  args.add_jac(branch_, cm, Complex(gain_, 0.0));
}

// ---------------------------------------------------------------------------
// Diode

Diode::Diode(std::string name, NodeId anode, NodeId cathode, Params params)
    : Device(std::move(name)), anode_(anode), cathode_(cathode),
      params_(params) {
  RELSIM_REQUIRE(params_.is > 0.0, "diode saturation current must be > 0");
  RELSIM_REQUIRE(params_.n > 0.0, "diode emission coefficient must be > 0");
  RELSIM_REQUIRE(anode != cathode, "diode terminals must differ");
}

void Diode::evaluate(double v, double& i, double& g) const {
  const double vt = params_.n * units::thermal_voltage(params_.temp_k);
  // Linearize beyond +40 thermal voltages to keep exp() bounded; the
  // extension is C1-continuous so Newton sees no kink.
  const double vmax = 40.0 * vt;
  if (v <= vmax) {
    const double e = std::exp(v / vt);
    i = params_.is * (e - 1.0);
    g = params_.is * e / vt;
  } else {
    const double e = std::exp(vmax / vt);
    const double g0 = params_.is * e / vt;
    i = params_.is * (e - 1.0) + g0 * (v - vmax);
    g = g0;
  }
}

void Diode::set_temperature(double temp_k) {
  RELSIM_REQUIRE(temp_k > 0.0, "temperature must be positive");
  params_.temp_k = temp_k;
}

double Diode::current_at(double v) const {
  double i = 0.0, g = 0.0;
  evaluate(v, i, g);
  return i;
}

void Diode::stamp(StampArgs& args) {
  const double v = args.v(anode_) - args.v(cathode_);
  double i = 0.0, g = 0.0;
  evaluate(v, i, g);
  args.add_conductance(anode_, cathode_, g);
  // Newton companion current: i(v*) - g*v* flowing anode -> cathode.
  args.add_current(anode_, cathode_, i - g * v);
}

void Diode::stamp_ac(AcStampArgs& args) {
  const double v = args.v_op(anode_) - args.v_op(cathode_);
  double i = 0.0, g = 0.0;
  evaluate(v, i, g);
  args.add_admittance(anode_, cathode_, Complex(g, 0.0));
}

}  // namespace relsim::spice
