#include "spice/waveform.h"

#include <cmath>
#include <numbers>

#include "util/error.h"
#include "util/mathx.h"

namespace relsim::spice {

SineWaveform::SineWaveform(double offset, double amplitude, double freq_hz,
                           double delay_s)
    : offset_(offset), amplitude_(amplitude), freq_(freq_hz), delay_(delay_s) {
  RELSIM_REQUIRE(freq_hz > 0.0, "sine frequency must be positive");
}

double SineWaveform::value(double time) const {
  if (time < delay_) return offset_;
  return offset_ +
         amplitude_ *
             std::sin(2.0 * std::numbers::pi * freq_ * (time - delay_));
}

PulseWaveform::PulseWaveform(double low, double high, double delay_s,
                             double rise_s, double fall_s, double width_s,
                             double period_s)
    : low_(low),
      high_(high),
      delay_(delay_s),
      rise_(rise_s),
      fall_(fall_s),
      width_(width_s),
      period_(period_s) {
  RELSIM_REQUIRE(rise_s > 0.0 && fall_s > 0.0,
                 "pulse edges must have non-zero duration");
  RELSIM_REQUIRE(period_s >= rise_s + width_s + fall_s,
                 "pulse period shorter than rise+width+fall");
}

double PulseWaveform::value(double time) const {
  if (time < delay_) return low_;
  const double t = std::fmod(time - delay_, period_);
  if (t < rise_) return lerp(low_, high_, t / rise_);
  if (t < rise_ + width_) return high_;
  if (t < rise_ + width_ + fall_)
    return lerp(high_, low_, (t - rise_ - width_) / fall_);
  return low_;
}

std::unique_ptr<Waveform> PulseWaveform::clone() const {
  return std::make_unique<PulseWaveform>(low_, high_, delay_, rise_, fall_,
                                         width_, period_);
}

PwlWaveform::PwlWaveform(std::vector<double> times, std::vector<double> values)
    : times_(std::move(times)), values_(std::move(values)) {
  RELSIM_REQUIRE(times_.size() == values_.size() && times_.size() >= 2,
                 "PWL needs >= 2 (t,v) points");
  for (std::size_t i = 1; i < times_.size(); ++i) {
    RELSIM_REQUIRE(times_[i] > times_[i - 1],
                   "PWL times must be strictly increasing");
  }
}

double PwlWaveform::value(double time) const {
  return interp1(times_, values_, time);
}

std::unique_ptr<Waveform> PwlWaveform::clone() const {
  return std::make_unique<PwlWaveform>(times_, values_);
}

}  // namespace relsim::spice
