// Passive elements, independent sources, controlled sources and the diode.
#pragma once

#include <memory>
#include <optional>

#include "spice/device.h"
#include "spice/stress.h"
#include "spice/waveform.h"

namespace relsim::spice {

/// Interconnect geometry attached to a resistor that models a wire; enables
/// current-density extraction for electromigration analysis.
struct WireGeometry {
  double width_um = 1.0;
  double length_um = 10.0;
  double thickness_um = 0.35;

  /// Cross-section area in cm^2.
  double cross_section_cm2() const {
    return width_um * 1e-4 * thickness_um * 1e-4;
  }
};

class Resistor final : public Device {
 public:
  Resistor(std::string name, NodeId a, NodeId b, double resistance);

  void stamp(StampArgs& args) override;
  void stamp_ac(AcStampArgs& args) override;
  void accept_step(const Vector& x, double time, double dt) override;

  double resistance() const { return resistance_; }
  void set_resistance(double r);

  /// Marks this resistor as an interconnect wire with physical geometry and
  /// starts accumulating current stress through it.
  void set_wire_geometry(const WireGeometry& geom) { geometry_ = geom; }
  const std::optional<WireGeometry>& wire_geometry() const { return geometry_; }

  /// Instantaneous current a->b at solution `x`.
  double current(const Vector& x) const;

  /// Records one DC stress observation (used by the aging engine when the
  /// workload is a DC operating point). No-op without wire geometry.
  void record_stress_point(const Vector& x, double weight);

  const WireStressAccumulator& stress() const { return stress_; }
  void reset_stress() { stress_.reset(); }

  NodeId node_a() const { return a_; }
  NodeId node_b() const { return b_; }

 private:
  NodeId a_, b_;
  double resistance_;
  std::optional<WireGeometry> geometry_;
  WireStressAccumulator stress_;
};

class Capacitor final : public Device {
 public:
  Capacitor(std::string name, NodeId a, NodeId b, double capacitance);

  void stamp(StampArgs& args) override;
  void stamp_ac(AcStampArgs& args) override;
  void begin_analysis(AnalysisMode mode, const Vector& x) override;
  void accept_step(const Vector& x, double time, double dt) override;

  double capacitance() const { return capacitance_; }
  void set_capacitance(double c);

 private:
  NodeId a_, b_;
  double capacitance_;
  double v_prev_ = 0.0;
  double i_prev_ = 0.0;
  double dt_pending_ = 0.0;
  Integrator integrator_ = Integrator::kBackwardEuler;
};

/// Inductor (adds one branch-current unknown; DC short, BE/TRAP companion
/// in transient, jwL branch in AC).
class Inductor final : public Device {
 public:
  Inductor(std::string name, NodeId a, NodeId b, double inductance);

  int extra_unknowns() const override { return 1; }
  void set_extra_base(int base) override { branch_ = base; }
  void stamp(StampArgs& args) override;
  void stamp_ac(AcStampArgs& args) override;
  void begin_analysis(AnalysisMode mode, const Vector& x) override;
  void accept_step(const Vector& x, double time, double dt) override;

  double inductance() const { return inductance_; }

  /// Branch current (a -> b) at solution `x`.
  double current(const Vector& x) const;

 private:
  NodeId a_, b_;
  double inductance_;
  double i_prev_ = 0.0;
  double v_prev_ = 0.0;
  int branch_ = -1;
};

/// Independent voltage source (adds one branch-current unknown).
class VoltageSource final : public Device {
 public:
  VoltageSource(std::string name, NodeId plus, NodeId minus,
                std::unique_ptr<Waveform> waveform);

  int extra_unknowns() const override { return 1; }
  void set_extra_base(int base) override { branch_ = base; }
  void stamp(StampArgs& args) override;
  void stamp_ac(AcStampArgs& args) override;

  /// Sets the AC (small-signal) excitation magnitude of this source; the
  /// default 0 makes supplies AC grounds. Phase is taken as 0.
  void set_ac_magnitude(double magnitude) { ac_magnitude_ = magnitude; }
  double ac_magnitude() const { return ac_magnitude_; }

  /// Replaces the waveform (used by DC sweeps and EMI injection).
  void set_waveform(std::unique_ptr<Waveform> waveform);
  void set_dc(double value);
  const Waveform& waveform() const { return *waveform_; }

  /// Branch current at solution `x`: positive when conventional current
  /// flows from the + terminal through the source to the - terminal.
  double current(const Vector& x) const;

  NodeId plus() const { return plus_; }
  NodeId minus() const { return minus_; }

 private:
  NodeId plus_, minus_;
  std::unique_ptr<Waveform> waveform_;
  double ac_magnitude_ = 0.0;
  int branch_ = -1;
};

/// Independent current source: a positive value drives conventional current
/// out of node `from`, through the source, into node `to` (so `to`'s
/// potential rises when it is loaded resistively to ground).
class CurrentSource final : public Device {
 public:
  CurrentSource(std::string name, NodeId from, NodeId to,
                std::unique_ptr<Waveform> waveform);

  void stamp(StampArgs& args) override;
  void stamp_ac(AcStampArgs& args) override;
  void set_waveform(std::unique_ptr<Waveform> waveform);
  void set_dc(double value);

  /// AC excitation magnitude (default 0: open in small signal).
  void set_ac_magnitude(double magnitude) { ac_magnitude_ = magnitude; }

 private:
  NodeId from_, to_;
  double ac_magnitude_ = 0.0;
  std::unique_ptr<Waveform> waveform_;
};

/// Voltage-controlled voltage source: v(plus,minus) = gain * v(cp, cm).
class Vcvs final : public Device {
 public:
  Vcvs(std::string name, NodeId plus, NodeId minus, NodeId control_plus,
       NodeId control_minus, double gain);

  int extra_unknowns() const override { return 1; }
  void set_extra_base(int base) override { branch_ = base; }
  void stamp(StampArgs& args) override;
  void stamp_ac(AcStampArgs& args) override;

  double gain() const { return gain_; }
  void set_gain(double gain) { gain_ = gain; }

 private:
  NodeId plus_, minus_, cp_, cm_;
  double gain_;
  int branch_ = -1;
};

/// Junction diode with exponential I-V and overflow-safe linearized tail.
class Diode final : public Device {
 public:
  struct Params {
    double is = 1e-14;       ///< saturation current, A
    double n = 1.0;          ///< emission coefficient
    double temp_k = 300.0;   ///< junction temperature
  };

  Diode(std::string name, NodeId anode, NodeId cathode, Params params);
  Diode(std::string name, NodeId anode, NodeId cathode)
      : Diode(std::move(name), anode, cathode, Params{}) {}

  void stamp(StampArgs& args) override;
  void stamp_ac(AcStampArgs& args) override;

  /// Diode current at forward voltage v (exposed for tests).
  double current_at(double v) const;

  void set_temperature(double temp_k);

 private:
  void evaluate(double v, double& i, double& g) const;

  NodeId anode_, cathode_;
  Params params_;
};

}  // namespace relsim::spice
