#include "spice/stress.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace relsim::spice {

void MosStressAccumulator::add(double vgs, double vds, double vbs, double ids,
                               double dt) {
  (void)vbs;  // recorded API keeps the body voltage for future models
  RELSIM_REQUIRE(dt > 0.0, "stress weight must be positive");
  const double avgs = std::abs(vgs);
  const double avds = std::abs(vds);
  total_weight_ += dt;
  sum_abs_vgs_ += avgs * dt;
  sum_ids2_ += ids * ids * dt;
  max_abs_vgs_ = std::max(max_abs_vgs_, avgs);
  max_abs_vds_ = std::max(max_abs_vds_, avds);
  if (avgs > on_threshold_) {
    on_weight_ += dt;
    sum_on_abs_vgs_ += avgs * dt;
    sum_on_abs_vds_ += avds * dt;
  }
}

void MosStressAccumulator::reset() { *this = MosStressAccumulator(on_threshold_); }

double MosStressAccumulator::mean_abs_vgs() const {
  return total_weight_ > 0.0 ? sum_abs_vgs_ / total_weight_ : 0.0;
}

double MosStressAccumulator::mean_on_abs_vgs() const {
  return on_weight_ > 0.0 ? sum_on_abs_vgs_ / on_weight_ : 0.0;
}

double MosStressAccumulator::mean_on_abs_vds() const {
  return on_weight_ > 0.0 ? sum_on_abs_vds_ / on_weight_ : 0.0;
}

double MosStressAccumulator::rms_ids() const {
  return total_weight_ > 0.0 ? std::sqrt(sum_ids2_ / total_weight_) : 0.0;
}

double MosStressAccumulator::duty() const {
  return total_weight_ > 0.0 ? on_weight_ / total_weight_ : 0.0;
}

void WireStressAccumulator::add(double current, double dt) {
  RELSIM_REQUIRE(dt > 0.0, "stress weight must be positive");
  total_weight_ += dt;
  sum_i_ += current * dt;
  sum_i2_ += current * current * dt;
  peak_abs_ = std::max(peak_abs_, std::abs(current));
}

void WireStressAccumulator::reset() { *this = WireStressAccumulator(); }

double WireStressAccumulator::mean_current() const {
  return total_weight_ > 0.0 ? sum_i_ / total_weight_ : 0.0;
}

double WireStressAccumulator::rms_current() const {
  return total_weight_ > 0.0 ? std::sqrt(sum_i2_ / total_weight_) : 0.0;
}

}  // namespace relsim::spice
