#include <algorithm>
#include <cmath>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "spice/analysis.h"
#include "util/error.h"
#include "util/log.h"

namespace relsim::spice {

const std::vector<double>& TransientResult::node(NodeId node) const {
  const auto it = nodes_.find(node);
  RELSIM_REQUIRE(it != nodes_.end(), "node was not probed");
  return it->second;
}

const std::vector<double>& TransientResult::source_current(
    const std::string& name) const {
  const auto it = currents_.find(name);
  RELSIM_REQUIRE(it != currents_.end(), "source current was not probed");
  return it->second;
}

TransientResult transient_analysis(
    Circuit& circuit, const TransientOptions& options,
    const std::vector<NodeId>& probe_nodes,
    const std::vector<std::string>& probe_source_currents) {
  RELSIM_REQUIRE(options.dt > 0.0, "transient dt must be positive");
  RELSIM_REQUIRE(options.t_stop > 0.0, "transient t_stop must be positive");
  obs::init_trace_from_env();
  circuit.assemble();
  const SolverStats stats_before = circuit.solver_cache().stats;

  // Starting solution: DC operating point, or raw initial conditions (UIC).
  Vector x;
  if (options.use_initial_conditions) {
    x.assign(static_cast<std::size_t>(circuit.unknown_count()), 0.0);
    for (const auto& [node, v] : options.initial_conditions) {
      RELSIM_REQUIRE(node > kGround && node <= circuit.node_count(),
                     "initial condition on unknown node");
      x[static_cast<std::size_t>(node - 1)] = v;
    }
  } else {
    DcOptions dc;
    dc.newton = options.newton;
    x = dc_operating_point(circuit, dc).x();
  }

  for (const auto& device : circuit.devices()) {
    device->begin_analysis(AnalysisMode::kTransient, x);
  }

  std::vector<VoltageSource*> probed_sources;
  probed_sources.reserve(probe_source_currents.size());
  for (const std::string& name : probe_source_currents) {
    probed_sources.push_back(&circuit.device_as<VoltageSource>(name));
  }

  TransientResult result;
  auto record = [&](double t) {
    result.time_.push_back(t);
    for (NodeId n : probe_nodes) {
      result.nodes_[n].push_back(
          n == kGround ? 0.0 : x[static_cast<std::size_t>(n - 1)]);
    }
    for (std::size_t i = 0; i < probed_sources.size(); ++i) {
      result.currents_[probe_source_currents[i]].push_back(
          probed_sources[i]->current(x));
    }
  };
  record(0.0);

  const obs::TraceSpan tran_span("transient.run");
  static obs::Counter& c_steps = obs::metrics().counter("transient.steps");
  static obs::Counter& c_rejected =
      obs::metrics().counter("transient.rejected_steps");

  double t = 0.0;
  double dt = options.dt;
  int halvings = 0;
  while (t < options.t_stop - 1e-15 * options.t_stop) {
    dt = std::min(dt, options.t_stop - t);
    Vector x_try = x;
    const NewtonResult res =
        newton_solve(circuit, x_try, AnalysisMode::kTransient,
                     options.integrator, t + dt, dt, 1.0, options.newton.gmin,
                     options.newton);
    if (!res.converged) {
      ++halvings;
      c_rejected.inc();
      if (halvings > options.max_step_halvings) {
        throw ConvergenceError(
            "transient step failed to converge after " +
            std::to_string(options.max_step_halvings) +
            " halvings at t=" + std::to_string(t) +
            " (dt=" + std::to_string(dt) + ")");
      }
      dt *= 0.5;
      continue;
    }
    x = std::move(x_try);
    t += dt;
    c_steps.inc();
    for (const auto& device : circuit.devices()) {
      device->accept_step(x, t, dt);
    }
    record(t);
    if (halvings > 0 && dt < options.dt) {
      dt = std::min(dt * 2.0, options.dt);
      if (dt >= options.dt) halvings = 0;
    }
  }
  result.set_solver_stats(circuit.solver_cache().stats - stats_before);
  result.set_outcome(true);
  return result;
}

}  // namespace relsim::spice
