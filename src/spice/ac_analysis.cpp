#include "spice/ac_analysis.h"

#include <cmath>
#include <numbers>

#include "util/error.h"

namespace relsim::spice {

// ---------------------------------------------------------------------------
// AcStampArgs helpers (declared in device.h)

void AcStampArgs::add_jac(int row, int col, Complex value) {
  if (row < 0 || col < 0) return;
  jac(static_cast<std::size_t>(row), static_cast<std::size_t>(col)) += value;
}

void AcStampArgs::add_rhs(int row, Complex value) {
  if (row < 0) return;
  rhs[static_cast<std::size_t>(row)] += value;
}

void AcStampArgs::add_admittance(NodeId a, NodeId b, Complex y) {
  const int ia = StampArgs::unknown_of(a);
  const int ib = StampArgs::unknown_of(b);
  add_jac(ia, ia, y);
  add_jac(ib, ib, y);
  add_jac(ia, ib, -y);
  add_jac(ib, ia, -y);
}

void AcStampArgs::add_current(NodeId a, NodeId b, Complex i) {
  add_rhs(StampArgs::unknown_of(a), -i);
  add_rhs(StampArgs::unknown_of(b), i);
}

// ---------------------------------------------------------------------------
// AcResult

Complex AcResult::v(std::size_t k, NodeId node) const {
  RELSIM_REQUIRE(k < solutions_.size(), "frequency index out of range");
  if (node == kGround) return Complex(0.0, 0.0);
  return solutions_[k][static_cast<std::size_t>(node - 1)];
}

std::vector<double> AcResult::magnitude(NodeId node) const {
  std::vector<double> out;
  out.reserve(freqs_.size());
  for (std::size_t k = 0; k < freqs_.size(); ++k) {
    out.push_back(std::abs(v(k, node)));
  }
  return out;
}

std::vector<double> AcResult::magnitude_db(NodeId node) const {
  std::vector<double> out = magnitude(node);
  for (double& m : out) m = 20.0 * std::log10(std::max(m, 1e-300));
  return out;
}

std::vector<double> AcResult::phase(NodeId node) const {
  std::vector<double> out;
  out.reserve(freqs_.size());
  for (std::size_t k = 0; k < freqs_.size(); ++k) {
    out.push_back(std::arg(v(k, node)));
  }
  return out;
}

double AcResult::corner_frequency(NodeId node) const {
  const std::vector<double> db = magnitude_db(node);
  RELSIM_REQUIRE(!db.empty(), "AC result is empty");
  const double target = db.front() - 3.0103;  // -3 dB (half power)
  for (std::size_t k = 1; k < db.size(); ++k) {
    if (db[k] <= target && db[k - 1] > target) {
      // Interpolate in log-frequency.
      const double t = (db[k - 1] - target) / (db[k - 1] - db[k]);
      const double lf = std::log10(freqs_[k - 1]) +
                        t * (std::log10(freqs_[k]) - std::log10(freqs_[k - 1]));
      return std::pow(10.0, lf);
    }
  }
  return 0.0;
}

// ---------------------------------------------------------------------------

AcResult ac_analysis(Circuit& circuit,
                     const std::vector<double>& frequencies_hz,
                     const AcOptions& options) {
  RELSIM_REQUIRE(!frequencies_hz.empty(), "AC analysis needs frequencies");
  circuit.assemble();

  // Linearization point.
  const DcResult op = dc_operating_point(circuit, options.dc);

  const std::size_t n = static_cast<std::size_t>(circuit.unknown_count());
  AcResult result;
  SolverStats stats = op.solver_stats();
  result.freqs_ = frequencies_hz;
  result.solutions_.reserve(frequencies_hz.size());

  ComplexMatrix jac(n, n);
  ComplexVector rhs(n);
  for (double f : frequencies_hz) {
    RELSIM_REQUIRE(f > 0.0, "AC frequencies must be positive");
    jac.fill(Complex(0.0, 0.0));
    std::fill(rhs.begin(), rhs.end(), Complex(0.0, 0.0));
    AcStampArgs args{jac, rhs, op.x(), 2.0 * std::numbers::pi * f};
    for (const auto& device : circuit.devices()) device->stamp_ac(args);
    // Same diagonal gmin discipline as the DC solve: keeps matrices
    // regular with cut-off stacks and floating nodes.
    const Complex gmin(options.dc.newton.gmin, 0.0);
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(circuit.node_count()); ++i) {
      jac(i, i) += gmin;
    }
    result.solutions_.push_back(ComplexLu(jac).solve(rhs));
    ++stats.complex_factorizations;
  }
  result.set_solver_stats(stats);
  result.set_outcome(true);
  return result;
}

}  // namespace relsim::spice
