// Circuit: named nodes + owned devices, with the MNA bookkeeping.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "spice/device.h"
#include "spice/elements.h"
#include "spice/mosfet.h"
#include "spice/solver_cache.h"
#include "util/error.h"

namespace relsim::spice {

class Circuit {
 public:
  Circuit() = default;

  /// Returns the node id for `name`, creating it on first use. "0" and
  /// "gnd" map to ground.
  NodeId node(const std::string& name);

  /// Looks up an existing node; throws if it was never created.
  NodeId find_node(const std::string& name) const;

  const std::string& node_name(NodeId id) const;

  /// Number of non-ground nodes.
  int node_count() const { return next_node_ - 1; }

  /// Total unknown count (nodes + branch currents). Valid after assemble().
  int unknown_count() const;

  // -- device factories (names must be unique) ------------------------------
  Resistor& add_resistor(const std::string& name, NodeId a, NodeId b,
                         double resistance);
  Capacitor& add_capacitor(const std::string& name, NodeId a, NodeId b,
                           double capacitance);
  Inductor& add_inductor(const std::string& name, NodeId a, NodeId b,
                         double inductance);
  VoltageSource& add_vsource(const std::string& name, NodeId plus,
                             NodeId minus, double dc_value);
  VoltageSource& add_vsource(const std::string& name, NodeId plus,
                             NodeId minus, std::unique_ptr<Waveform> waveform);
  CurrentSource& add_isource(const std::string& name, NodeId from, NodeId to,
                             double dc_value);
  CurrentSource& add_isource(const std::string& name, NodeId from, NodeId to,
                             std::unique_ptr<Waveform> waveform);
  Vcvs& add_vcvs(const std::string& name, NodeId plus, NodeId minus,
                 NodeId control_plus, NodeId control_minus, double gain);
  Diode& add_diode(const std::string& name, NodeId anode, NodeId cathode,
                   Diode::Params params = {});
  Mosfet& add_mosfet(const std::string& name, NodeId drain, NodeId gate,
                     NodeId source, NodeId bulk, const MosParams& params);

  /// Adds an externally constructed device (takes ownership).
  Device& add_device(std::unique_ptr<Device> device);

  /// Finds a device by name (throws if absent / wrong type on the typed
  /// variants).
  Device& device(const std::string& name);
  const Device& device(const std::string& name) const;
  template <typename T>
  T& device_as(const std::string& name) {
    T* typed = dynamic_cast<T*>(&device(name));
    if (typed == nullptr) {
      throw Error("device '" + name + "' has unexpected type");
    }
    return *typed;
  }
  template <typename T>
  const T& device_as(const std::string& name) const {
    const T* typed = dynamic_cast<const T*>(&device(name));
    if (typed == nullptr) {
      throw Error("device '" + name + "' has unexpected type");
    }
    return *typed;
  }

  const std::vector<std::unique_ptr<Device>>& devices() const {
    return devices_;
  }

  /// All MOSFETs in insertion order (aging and stress APIs iterate these).
  std::vector<Mosfet*> mosfets();
  /// All wire resistors (with geometry) in insertion order.
  std::vector<Resistor*> wires();

  /// Enables stress recording on every MOSFET and resets wire accumulators.
  void enable_stress_recording();

  /// Sets the operating temperature of every temperature-aware device
  /// (MOSFET VT/mobility tempcos, diode thermal voltage).
  void set_temperature(double temp_k);

  /// Assigns branch-current indices. Called by analyses; idempotent until a
  /// device is added.
  void assemble();

  /// Solver state (sparsity pattern, symbolic LU, stats) reused across
  /// Newton iterations and timesteps; structure is invalidated whenever a
  /// device is added.
  SolverCache& solver_cache() { return solver_cache_; }

 private:
  int next_node_ = 1;
  std::map<std::string, NodeId> node_ids_;
  std::vector<std::string> node_names_{"0"};
  std::vector<std::unique_ptr<Device>> devices_;
  std::map<std::string, Device*> device_index_;
  int extra_unknowns_ = 0;
  bool assembled_ = false;
  SolverCache solver_cache_;
};

}  // namespace relsim::spice
