// Source waveforms for independent sources.
#pragma once

#include <memory>
#include <vector>

namespace relsim::spice {

/// Time-dependent source value. Implementations must be pure functions of
/// time (no per-call state) so analyses can evaluate them at any t.
class Waveform {
 public:
  virtual ~Waveform() = default;
  virtual double value(double time) const = 0;
  /// Value used for the DC operating point (t = 0 unless overridden).
  virtual double dc_value() const { return value(0.0); }
  virtual std::unique_ptr<Waveform> clone() const = 0;
};

/// Constant value.
class DcWaveform final : public Waveform {
 public:
  explicit DcWaveform(double value) : value_(value) {}
  double value(double) const override { return value_; }
  std::unique_ptr<Waveform> clone() const override {
    return std::make_unique<DcWaveform>(value_);
  }

 private:
  double value_;
};

/// offset + amplitude * sin(2*pi*freq*(t - delay)), zero sine before delay.
/// This is the EMI injection waveform used by the EMC analyses (Figs. 3-4).
class SineWaveform final : public Waveform {
 public:
  SineWaveform(double offset, double amplitude, double freq_hz,
               double delay_s = 0.0);
  double value(double time) const override;
  double dc_value() const override { return offset_; }
  std::unique_ptr<Waveform> clone() const override {
    return std::make_unique<SineWaveform>(offset_, amplitude_, freq_, delay_);
  }

  double offset() const { return offset_; }
  double amplitude() const { return amplitude_; }
  double frequency() const { return freq_; }

 private:
  double offset_;
  double amplitude_;
  double freq_;
  double delay_;
};

/// Periodic trapezoidal pulse (SPICE PULSE semantics).
class PulseWaveform final : public Waveform {
 public:
  PulseWaveform(double low, double high, double delay_s, double rise_s,
                double fall_s, double width_s, double period_s);
  double value(double time) const override;
  double dc_value() const override { return low_; }
  std::unique_ptr<Waveform> clone() const override;

 private:
  double low_, high_, delay_, rise_, fall_, width_, period_;
};

/// Piecewise-linear waveform through (t, v) points; clamps outside range.
class PwlWaveform final : public Waveform {
 public:
  PwlWaveform(std::vector<double> times, std::vector<double> values);
  double value(double time) const override;
  std::unique_ptr<Waveform> clone() const override;

 private:
  std::vector<double> times_;
  std::vector<double> values_;
};

}  // namespace relsim::spice
