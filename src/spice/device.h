// Device interface for the MNA simulator.
//
// The simulator solves F(x) = 0 by Newton iteration, where x stacks the
// non-ground node voltages followed by branch currents of devices that need
// them (voltage sources, VCVS). Each Newton iteration assembles the
// linearized system J * x_new = rhs by asking every device to stamp its
// companion model at the current iterate.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "linalg/complex_matrix.h"
#include "linalg/matrix.h"
#include "linalg/sparse_matrix.h"

namespace relsim::spice {

/// Node handle. 0 is ground; positive ids are created by Circuit::node().
using NodeId = int;
inline constexpr NodeId kGround = 0;

enum class AnalysisMode {
  kDcOp,       ///< DC operating point: capacitors open, inductors short
  kTransient,  ///< time stepping with companion models
};

/// Integration method for the transient companion models.
enum class Integrator {
  kBackwardEuler,
  kTrapezoidal,
};

/// Everything a device needs to stamp one Newton iteration.
///
/// The Jacobian target is one of three backends, selected by constructor:
/// a dense Matrix, a SparseMatrix with a frozen structure, or a
/// SparsityPattern capture pass (positions recorded, values discarded).
/// Devices only see add_jac()/add_rhs() and friends, so they are agnostic
/// to which backend is active.
struct StampArgs {
  StampArgs(Matrix& jac, Vector& rhs_in, const Vector& x_in,
            AnalysisMode mode_in, Integrator integrator_in, double time_in,
            double dt_in, double source_scale_in)
      : rhs(rhs_in), x(x_in), mode(mode_in), integrator(integrator_in),
        time(time_in), dt(dt_in), source_scale(source_scale_in),
        dense_(&jac) {}
  StampArgs(SparseMatrix& jac, Vector& rhs_in, const Vector& x_in,
            AnalysisMode mode_in, Integrator integrator_in, double time_in,
            double dt_in, double source_scale_in)
      : rhs(rhs_in), x(x_in), mode(mode_in), integrator(integrator_in),
        time(time_in), dt(dt_in), source_scale(source_scale_in),
        sparse_(&jac) {}
  StampArgs(SparsityPattern& pattern, Vector& rhs_in, const Vector& x_in,
            AnalysisMode mode_in, Integrator integrator_in, double time_in,
            double dt_in, double source_scale_in)
      : rhs(rhs_in), x(x_in), mode(mode_in), integrator(integrator_in),
        time(time_in), dt(dt_in), source_scale(source_scale_in),
        pattern_(&pattern) {}

  Vector& rhs;
  const Vector& x;  ///< current iterate
  AnalysisMode mode = AnalysisMode::kDcOp;
  Integrator integrator = Integrator::kBackwardEuler;
  double time = 0.0;          ///< time at the end of the step being solved
  double dt = 0.0;            ///< current step size (transient only)
  double source_scale = 1.0;  ///< independent-source scale (source stepping)

  /// Positions a sparse-backend stamp hit outside the frozen structure
  /// (stale pattern, e.g. a gate-leak path appearing after breakdown).
  /// Empty after a clean assembly; the caller grows the pattern and
  /// restamps when non-empty.
  std::vector<std::pair<int, int>> missed;

  /// Voltage of node `n` at the current iterate (0 for ground).
  double v(NodeId n) const {
    return n == kGround ? 0.0 : x[static_cast<std::size_t>(n - 1)];
  }

  /// Adds `g` between nodes a and b (standard conductance stamp).
  void add_conductance(NodeId a, NodeId b, double g);

  /// Adds a current source of value `i` flowing from node a to node b
  /// (i.e. out of a, into b).
  void add_current(NodeId a, NodeId b, double i);

  /// Adds `value` at jacobian (row, col) where row/col are unknown indices
  /// (node-1 for voltages, or a branch index). Ignores ground (-1).
  void add_jac(int row, int col, double value);

  /// Adds `value` to rhs[row]; ignores ground (-1).
  void add_rhs(int row, double value);

  /// Unknown index of node `n` (-1 for ground).
  static int unknown_of(NodeId n) { return n - 1; }

 private:
  // Exactly one backend is non-null.
  Matrix* dense_ = nullptr;
  SparseMatrix* sparse_ = nullptr;
  SparsityPattern* pattern_ = nullptr;
};

/// Everything a device needs to stamp one AC (small-signal) frequency
/// point. Devices are linearized around the DC operating point `op`.
struct AcStampArgs {
  ComplexMatrix& jac;
  ComplexVector& rhs;
  const Vector& op;  ///< DC operating point the linearization is taken at
  double omega = 0.0;  ///< angular frequency, rad/s

  double v_op(NodeId n) const {
    return n == kGround ? 0.0 : op[static_cast<std::size_t>(n - 1)];
  }

  /// Adds complex admittance `y` between nodes a and b.
  void add_admittance(NodeId a, NodeId b, Complex y);

  /// Adds a phasor current source of value `i` flowing from a to b.
  void add_current(NodeId a, NodeId b, Complex i);

  void add_jac(int row, int col, Complex value);
  void add_rhs(int row, Complex value);
};

/// Base class of every circuit element.
class Device {
 public:
  explicit Device(std::string name) : name_(std::move(name)) {}
  virtual ~Device() = default;

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  const std::string& name() const { return name_; }

  /// Number of extra unknowns (branch currents) this device contributes.
  virtual int extra_unknowns() const { return 0; }

  /// Called once the circuit assigns this device its first extra-unknown
  /// index (only called when extra_unknowns() > 0).
  virtual void set_extra_base(int /*base*/) {}

  /// Stamps the linearized companion model at the iterate in `args`.
  virtual void stamp(StampArgs& args) = 0;

  /// Stamps the small-signal model at the DC operating point for one AC
  /// frequency. The default stamps nothing (an open); every relsim device
  /// overrides this.
  virtual void stamp_ac(AcStampArgs& /*args*/) {}

  /// Called when an analysis starts, with the starting solution (DC op
  /// result or user initial conditions). Devices reset integration state.
  virtual void begin_analysis(AnalysisMode /*mode*/, const Vector& /*x*/) {}

  /// Called after a step has been accepted; devices update their state
  /// (capacitor history, stress accumulators).
  virtual void accept_step(const Vector& /*x*/, double /*time*/,
                           double /*dt*/) {}

 protected:
  static double voltage(const Vector& x, NodeId n) {
    return n == kGround ? 0.0 : x[static_cast<std::size_t>(n - 1)];
  }

 private:
  std::string name_;
};

}  // namespace relsim::spice
