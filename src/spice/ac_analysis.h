// AC (small-signal) frequency-domain analysis.
//
// Linearizes the circuit around its DC operating point and solves the
// complex MNA system at each requested frequency. Excitation comes from
// sources whose AC magnitude has been set (set_ac_magnitude); every other
// source is an AC ground/open. Used by the EMC work to cross-check the
// coupling transfer function the time-domain rectification rides on, and
// by amplifier characterization (gain/bandwidth) in general.
#pragma once

#include <map>
#include <vector>

#include "linalg/complex_matrix.h"
#include "spice/analysis.h"
#include "spice/circuit.h"

namespace relsim::spice {

struct AcOptions {
  /// DC operating-point controls for the linearization point.
  DcOptions dc;
};

class AcResult : public AnalysisResultBase {
 public:
  const std::vector<double>& frequencies() const { return freqs_; }

  /// Complex node voltage at frequency index `k`.
  Complex v(std::size_t k, NodeId node) const;

  /// |V(node)| across all frequencies.
  std::vector<double> magnitude(NodeId node) const;

  /// 20*log10|V(node)| across all frequencies.
  std::vector<double> magnitude_db(NodeId node) const;

  /// Phase in radians across all frequencies.
  std::vector<double> phase(NodeId node) const;

  /// -3dB corner relative to the response at the first frequency point;
  /// linear interpolation in log-magnitude, 0 when never crossed.
  double corner_frequency(NodeId node) const;

  std::size_t point_count() const { return freqs_.size(); }

 private:
  friend AcResult ac_analysis(Circuit&, const std::vector<double>&,
                              const AcOptions&);
  std::vector<double> freqs_;
  std::vector<ComplexVector> solutions_;  ///< one vector per frequency
};

/// Runs the AC analysis over `frequencies_hz` (each > 0).
AcResult ac_analysis(Circuit& circuit,
                     const std::vector<double>& frequencies_hz,
                     const AcOptions& options = {});

}  // namespace relsim::spice
