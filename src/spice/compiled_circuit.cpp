#include "spice/compiled_circuit.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "linalg/lu.h"
#include "util/error.h"

namespace relsim::spice {

namespace {

/// values() slot of (row, col), or -1 when either index is ground. A pair
/// of live indices missing from the structure is a compile bug — the
/// pattern was captured from the very stamps being resolved.
int resolve_slot(const SparseMatrix& m, int row, int col) {
  if (row < 0 || col < 0) return -1;
  const int slot = m.value_index(static_cast<std::size_t>(row),
                                 static_cast<std::size_t>(col));
  RELSIM_REQUIRE(slot >= 0,
                 "compiled circuit: stamp position missing from the "
                 "captured structure");
  return slot;
}

void resolve_conductance_quad(const SparseMatrix& m, NodeId a, NodeId b,
                              int out[4]) {
  const int ia = StampArgs::unknown_of(a);
  const int ib = StampArgs::unknown_of(b);
  out[0] = resolve_slot(m, ia, ia);
  out[1] = resolve_slot(m, ib, ib);
  out[2] = resolve_slot(m, ia, ib);
  out[3] = resolve_slot(m, ib, ia);
}

}  // namespace

CompiledCircuit::CompiledCircuit(std::unique_ptr<Circuit> circuit)
    : CompiledCircuit(std::move(circuit), Options()) {}

CompiledCircuit::CompiledCircuit(std::unique_ptr<Circuit> circuit,
                                 Options options)
    : options_(options), circuit_(std::move(circuit)),
      simd_level_(options.simd_level) {
  RELSIM_REQUIRE(circuit_ != nullptr, "CompiledCircuit needs a circuit");
  RELSIM_REQUIRE(options_.max_lanes >= 1,
                 "CompiledCircuit: max_lanes must be >= 1");
  circuit_->assemble();
  n_ = static_cast<std::size_t>(circuit_->unknown_count());
  nodes_ = static_cast<std::size_t>(circuit_->node_count());

  // Nominal DC solve with the sparse path forced regardless of size: this
  // is the single pattern capture + symbolic factorization every workspace
  // shares, and its solution is the warm start for every lane.
  DcOptions dc;
  dc.newton = options_.newton;
  dc.newton.sparse_min_unknowns = 1;
  dc.allow_gmin_stepping = options_.allow_gmin_stepping;
  dc.allow_source_stepping = options_.allow_source_stepping;
  SolverCache& cache = circuit_->solver_cache();
  const SolverStats before = cache.stats;
  x_nom_ = dc_operating_point(*circuit_, dc).x();
  if (cache.lu == nullptr) {
    // The nominal solve ended on the dense rescue path. Re-run one Newton
    // pass from the solution so the cache holds a live sparse LU to copy.
    Vector x = x_nom_;
    newton_solve(*circuit_, x, AnalysisMode::kDcOp, Integrator::kBackwardEuler,
                 0.0, 0.0, 1.0, dc.newton.gmin, dc.newton);
  }
  RELSIM_REQUIRE(cache.lu != nullptr,
                 "compiled circuit: nominal solve left no sparse LU");
  compile_stats_ = cache.stats - before;
  matrix_master_ = cache.matrix;
  lu_master_ = std::make_unique<SparseLuFactorization>(*cache.lu);

  diag_.resize(nodes_);
  for (std::size_t i = 0; i < nodes_; ++i) {
    diag_[i] = resolve_slot(matrix_master_, static_cast<int>(i),
                            static_cast<int>(i));
  }

  for (Mosfet* m : circuit_->mosfets()) {
    MosSlots s;
    s.d = m->drain();
    s.g = m->gate();
    s.s = m->source();
    s.b = m->bulk();
    s.consts = m->eval_consts();
    const int rd = StampArgs::unknown_of(s.d);
    const int rs = StampArgs::unknown_of(s.s);
    const int cols[4] = {StampArgs::unknown_of(s.g), StampArgs::unknown_of(s.d),
                         StampArgs::unknown_of(s.s),
                         StampArgs::unknown_of(s.b)};
    for (int c = 0; c < 4; ++c) {
      s.jac[c] = resolve_slot(matrix_master_, rd, cols[c]);
      s.jac[4 + c] = resolve_slot(matrix_master_, rs, cols[c]);
    }
    // Leak paths exist in the captured pattern only when the master device
    // had them at compile time; workspaces are checked for parity.
    s.has_leak_gs = m->degradation().g_leak_gs > 0.0;
    s.has_leak_gd = m->degradation().g_leak_gd > 0.0;
    if (s.has_leak_gs) resolve_conductance_quad(matrix_master_, s.g, s.s,
                                                s.leak_gs);
    if (s.has_leak_gd) resolve_conductance_quad(matrix_master_, s.g, s.d,
                                                s.leak_gd);
    mos_.push_back(s);
  }
}

std::unique_ptr<CompiledCircuit::Workspace> CompiledCircuit::make_workspace(
    std::unique_ptr<Circuit> own) const {
  return std::make_unique<Workspace>(*this, std::move(own));
}

// ---------------------------------------------------------------------------
// Workspace

CompiledCircuit::Workspace::Workspace(const CompiledCircuit& compiled,
                                      std::unique_ptr<Circuit> own)
    : compiled_(compiled), circuit_(std::move(own)) {
  RELSIM_REQUIRE(circuit_ != nullptr, "Workspace needs a circuit");
  circuit_->assemble();
  RELSIM_REQUIRE(
      static_cast<std::size_t>(circuit_->unknown_count()) == compiled_.n_,
      "workspace circuit does not match the compiled master (unknown count)");

  mosfets_ = circuit_->mosfets();
  RELSIM_REQUIRE(mosfets_.size() == compiled_.mos_.size(),
                 "workspace circuit does not match the compiled master "
                 "(MOSFET count)");
  for (std::size_t m = 0; m < mosfets_.size(); ++m) {
    const MosSlots& s = compiled_.mos_[m];
    RELSIM_REQUIRE(mosfets_[m]->drain() == s.d && mosfets_[m]->gate() == s.g &&
                       mosfets_[m]->source() == s.s &&
                       mosfets_[m]->bulk() == s.b,
                   "workspace circuit does not match the compiled master "
                   "(MOSFET nodes)");
    RELSIM_REQUIRE(
        (mosfets_[m]->degradation().g_leak_gs > 0.0) == s.has_leak_gs &&
            (mosfets_[m]->degradation().g_leak_gd > 0.0) == s.has_leak_gd,
        "workspace circuit does not match the compiled master (gate-leak "
        "state; compile the master with the same degradation applied)");
  }
  affine_others_ = true;
  for (const auto& d : circuit_->devices()) {
    if (dynamic_cast<Mosfet*>(d.get()) != nullptr) continue;
    other_devices_.push_back(d.get());
    // Whitelist of devices whose DC stamp does not depend on the iterate;
    // anything else (diodes, user devices) forces per-lane restamping.
    if (dynamic_cast<Resistor*>(d.get()) == nullptr &&
        dynamic_cast<Capacitor*>(d.get()) == nullptr &&
        dynamic_cast<Inductor*>(d.get()) == nullptr &&
        dynamic_cast<VoltageSource*>(d.get()) == nullptr &&
        dynamic_cast<CurrentSource*>(d.get()) == nullptr &&
        dynamic_cast<Vcvs*>(d.get()) == nullptr) {
      affine_others_ = false;
    }
  }

  matrix_ = compiled_.matrix_master_;
  // Copy-constructing the factorization clones the master's symbolic
  // structure (pivot order, fill pattern); only numeric refactorizations
  // happen per sample.
  lu_ = std::make_unique<SparseLuFactorization>(*compiled_.lu_master_);
  rhs_.assign(compiled_.n_, 0.0);
  x_.assign(max_lanes(), Vector(compiled_.n_, 0.0));

  const std::size_t cells = mosfets_.size() * max_lanes();
  vd_.assign(cells, 0.0);
  vg_.assign(cells, 0.0);
  vs_.assign(cells, 0.0);
  vb_.assign(cells, 0.0);
  vt_base_.assign(cells, 0.0);
  beta_.assign(cells, 0.0);
  lambda_.assign(cells, 0.0);
  id_.assign(cells, 0.0);
  gm_.assign(cells, 0.0);
  gds_.assign(cells, 0.0);
  gmb_.assign(cells, 0.0);
  fgm_.assign(cells, 0.0);
  fgds_.assign(cells, 0.0);
  fgmb_.assign(cells, 0.0);
  chord_.resize(max_lanes());
  // Nominal model inputs for every lane, so lanes never carry stale data
  // from a previous, wider batch.
  for (std::size_t m = 0; m < mosfets_.size(); ++m) {
    for (std::size_t lane = 0; lane < max_lanes(); ++lane) {
      set_lane_variation(lane, m, mosfets_[m]->variation());
    }
  }
}

void CompiledCircuit::Workspace::set_lane_variation(std::size_t lane,
                                                    std::size_t mos_index,
                                                    const MosVariation& v) {
  Mosfet& m = *mosfets_[mos_index];
  m.set_variation(v);
  // Snapshot through the device's own eval_* helpers: identical expression
  // order to the scalar path, so scalar-kernel lanes are bit-identical to
  // Mosfet::evaluate on the varied device.
  const std::size_t off = idx(mos_index, lane);
  vt_base_[off] = m.eval_vt_base();
  beta_[off] = m.eval_beta();
  lambda_[off] = m.eval_lambda();
}

void CompiledCircuit::Workspace::eval_mosfets(std::size_t lanes) {
  const std::size_t L = max_lanes();
  for (std::size_t m = 0; m < mosfets_.size(); ++m) {
    const MosSlots& s = compiled_.mos_[m];
    const std::size_t base = m * L;
    const auto v = [](const Vector& x, NodeId node) {
      return node > 0 ? x[static_cast<std::size_t>(node - 1)] : 0.0;
    };
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      const Vector& x = x_[lane];
      vd_[base + lane] = v(x, s.d);
      vg_[base + lane] = v(x, s.g);
      vs_[base + lane] = v(x, s.s);
      vb_[base + lane] = v(x, s.b);
    }
    simd::MosLaneView view;
    view.vd = vd_.data() + base;
    view.vg = vg_.data() + base;
    view.vs = vs_.data() + base;
    view.vb = vb_.data() + base;
    view.vt_base = vt_base_.data() + base;
    view.beta = beta_.data() + base;
    view.lambda = lambda_.data() + base;
    view.id = id_.data() + base;
    view.gm = gm_.data() + base;
    view.gds = gds_.data() + base;
    view.gmb = gmb_.data() + base;
    simd::mos_eval_lanes_at(compiled_.simd_level(), s.consts, view, lanes);
  }
}

void CompiledCircuit::Workspace::build_affine_base(double gmin,
                                                   double source_scale) {
  matrix_.zero_values();
  std::fill(rhs_.begin(), rhs_.end(), 0.0);
  StampArgs args(matrix_, rhs_, x_[0], AnalysisMode::kDcOp,
                 Integrator::kBackwardEuler, 0.0, 0.0, source_scale);
  for (Device* d : other_devices_) d->stamp(args);
  RELSIM_REQUIRE(args.missed.empty(),
                 "compiled circuit: a device stamped outside the compiled "
                 "structure (topology changed after compile?)");
  double* vals = matrix_.values_data();
  for (std::size_t i = 0; i < compiled_.nodes_; ++i) {
    vals[compiled_.diag_[i]] += gmin;
  }
  base_values_.assign(matrix_.values().begin(), matrix_.values().end());
  base_rhs_ = rhs_;
}

void CompiledCircuit::Workspace::assemble_lane(std::size_t lane, double gmin,
                                               double source_scale) {
  if (affine_others_) {
    std::copy(base_values_.begin(), base_values_.end(), matrix_.values_data());
    std::copy(base_rhs_.begin(), base_rhs_.end(), rhs_.begin());
  } else {
    matrix_.zero_values();
    std::fill(rhs_.begin(), rhs_.end(), 0.0);
    StampArgs args(matrix_, rhs_, x_[lane], AnalysisMode::kDcOp,
                   Integrator::kBackwardEuler, 0.0, 0.0, source_scale);
    for (Device* d : other_devices_) d->stamp(args);
    RELSIM_REQUIRE(args.missed.empty(),
                   "compiled circuit: a device stamped outside the compiled "
                   "structure (topology changed after compile?)");
  }

  double* vals = matrix_.values_data();
  const std::size_t L = max_lanes();
  for (std::size_t m = 0; m < mosfets_.size(); ++m) {
    const MosSlots& s = compiled_.mos_[m];
    const std::size_t off = m * L + lane;
    const double gm = gm_[off], gds = gds_[off], gmb = gmb_[off];
    const double gss = -(gm + gds + gmb);
    const double entries[4] = {gm, gds, gss, gmb};
    for (int c = 0; c < 4; ++c) {
      if (s.jac[c] >= 0) vals[s.jac[c]] += entries[c];
      if (s.jac[4 + c] >= 0) vals[s.jac[4 + c]] -= entries[c];
    }
    // Newton companion current I_D(v*) - J*v*, flowing drain -> source.
    const double linear =
        gm * vg_[off] + gds * vd_[off] + gss * vs_[off] + gmb * vb_[off];
    const double icomp = id_[off] - linear;
    const int rd = StampArgs::unknown_of(s.d);
    const int rs = StampArgs::unknown_of(s.s);
    if (rd >= 0) rhs_[static_cast<std::size_t>(rd)] -= icomp;
    if (rs >= 0) rhs_[static_cast<std::size_t>(rs)] += icomp;

    const MosDegradation& deg = mosfets_[m]->degradation();
    if (s.has_leak_gs) {
      const double g = deg.g_leak_gs;
      if (s.leak_gs[0] >= 0) vals[s.leak_gs[0]] += g;
      if (s.leak_gs[1] >= 0) vals[s.leak_gs[1]] += g;
      if (s.leak_gs[2] >= 0) vals[s.leak_gs[2]] -= g;
      if (s.leak_gs[3] >= 0) vals[s.leak_gs[3]] -= g;
    }
    if (s.has_leak_gd) {
      const double g = deg.g_leak_gd;
      if (s.leak_gd[0] >= 0) vals[s.leak_gd[0]] += g;
      if (s.leak_gd[1] >= 0) vals[s.leak_gd[1]] += g;
      if (s.leak_gd[2] >= 0) vals[s.leak_gd[2]] -= g;
      if (s.leak_gd[3] >= 0) vals[s.leak_gd[3]] -= g;
    }
  }

  // gmin is folded into the affine base; stamp it here only on the
  // per-lane path.
  if (!affine_others_) {
    for (std::size_t i = 0; i < compiled_.nodes_; ++i) {
      vals[compiled_.diag_[i]] += gmin;
    }
  }
}

bool CompiledCircuit::Workspace::solve_assembled(Vector& x_new) {
  last_solve_sparse_ = false;
  try {
    try {
      lu_->refactor(matrix_);
      ++stats_.sparse_numeric_refactorizations;
    } catch (const SingularMatrixError&) {
      // Pivot order from the nominal point went singular for this sample;
      // a fresh symbolic analysis at the current values may still work.
      // The new structure invalidates every lane's chord snapshot.
      lu_ = std::make_unique<SparseLuFactorization>(matrix_);
      ++lu_generation_;
      ++stats_.sparse_symbolic_factorizations;
    }
    lu_->solve_into(rhs_, x_new);
    last_solve_sparse_ = true;
    return true;
  } catch (const SingularMatrixError&) {
    ++stats_.dense_fallbacks;
    try {
      Matrix jac = matrix_.to_dense();
      LuFactorization lu(jac);
      lu.solve_into(rhs_, x_new);
      ++stats_.dense_factorizations;
      return true;
    } catch (const SingularMatrixError&) {
      return false;
    }
  }
}

void CompiledCircuit::Workspace::newton_lanes(std::size_t lanes,
                                              std::vector<std::uint8_t>& active,
                                              std::vector<std::uint8_t>& ok,
                                              double gmin, double source_scale,
                                              bool allow_chord) {
  const NewtonOptions& options = compiled_.options_.newton;
  const std::size_t n = compiled_.n_;
  const std::size_t nodes = compiled_.nodes_;
  const std::size_t L = max_lanes();
  Vector x_new(n, 0.0);
  if (affine_others_) build_affine_base(gmin, source_scale);
  // Chord steps piggyback on the affine base (rhs-only assembly); without
  // it every iteration is a full one. A refreshed jacobian every few steps
  // keeps the linear chord rate from stalling on far-from-nominal samples.
  const bool chord = allow_chord && affine_others_;
  constexpr int kMaxChordSteps = 4;
  for (std::size_t lane = 0; lane < lanes; ++lane) chord_[lane].valid = false;

  for (int iter = 1; iter <= options.max_iterations; ++iter) {
    bool any = false;
    for (std::size_t lane = 0; lane < lanes; ++lane) any |= active[lane] != 0;
    if (!any) break;

    // Model evaluation for ALL lanes in lockstep (inactive lanes ride
    // along: lane results are element-wise, so this only costs the flops).
    eval_mosfets(lanes);

    for (std::size_t lane = 0; lane < lanes; ++lane) {
      if (!active[lane]) continue;
      ++stats_.newton_iterations;
      LaneChord& ch = chord_[lane];
      bool solved = false;
      bool full = !chord || !ch.valid || ch.steps >= kMaxChordSteps;
      if (!full && (ch.generation != lu_generation_ ||
                    !lu_->load_values(ch.lu))) {
        ch.valid = false;  // snapshot predates a symbolic rebuild
        full = true;
      }
      if (!full) {
        // Chord step: the frozen jacobian J~ from this lane's last
        // refactorization, with the companion rhs built AGAINST J~ —
        // b = J~ x_k - F(x_k) — so the fixed point is still the exact
        // circuit solution. Linear devices cancel out of b entirely
        // (J~ and F agree on them), leaving sources + the MOSFET
        // companions with frozen conductances and current currents.
        std::copy(base_rhs_.begin(), base_rhs_.end(), rhs_.begin());
        for (std::size_t m = 0; m < mosfets_.size(); ++m) {
          const MosSlots& s = compiled_.mos_[m];
          const std::size_t off = m * L + lane;
          const double gm = fgm_[off], gds = fgds_[off], gmb = fgmb_[off];
          const double gss = -(gm + gds + gmb);
          const double linear =
              gm * vg_[off] + gds * vd_[off] + gss * vs_[off] + gmb * vb_[off];
          const double icomp = id_[off] - linear;
          const int rd = StampArgs::unknown_of(s.d);
          const int rs = StampArgs::unknown_of(s.s);
          if (rd >= 0) rhs_[static_cast<std::size_t>(rd)] -= icomp;
          if (rs >= 0) rhs_[static_cast<std::size_t>(rs)] += icomp;
        }
        lu_->solve_into(rhs_, x_new);
        ++ch.steps;
        solved = true;
      } else {
        assemble_lane(lane, gmin, source_scale);
        solved = solve_assembled(x_new);
        if (chord && solved && last_solve_sparse_) {
          lu_->save_values(ch.lu);
          for (std::size_t m = 0; m < mosfets_.size(); ++m) {
            const std::size_t off = m * L + lane;
            fgm_[off] = gm_[off];
            fgds_[off] = gds_[off];
            fgmb_[off] = gmb_[off];
          }
          ch.valid = true;
          ch.steps = 0;
          ch.generation = lu_generation_;
        } else {
          ch.valid = false;
        }
      }
      if (!solved) {
        active[lane] = 0;  // singular even densely: lane goes to rescue
        continue;
      }
      bool finite = true;
      for (const double v : x_new) {
        if (!std::isfinite(v)) {
          finite = false;
          break;
        }
      }
      if (!finite) {
        active[lane] = 0;
        continue;
      }
      // Damped update + convergence check, matching newton_solve exactly.
      Vector& x = x_[lane];
      bool converged = true;
      for (std::size_t i = 0; i < n; ++i) {
        double delta = x_new[i] - x[i];
        const bool is_voltage = i < nodes;
        if (is_voltage && std::abs(delta) > options.max_step_v) {
          delta = std::copysign(options.max_step_v, delta);
          converged = false;
        }
        const double tol =
            (is_voltage ? options.v_abstol : options.i_abstol) +
            options.reltol * std::max(std::abs(x[i]), std::abs(x[i] + delta));
        if (std::abs(delta) > tol) converged = false;
        x[i] += delta;
      }
      if (converged) {
        ok[lane] = 1;
        active[lane] = 0;
      }
    }
  }
  // Lanes still active ran out of iterations.
  std::fill(active.begin(), active.begin() + static_cast<long>(lanes), 0);
}

void CompiledCircuit::Workspace::rescue_lane(std::size_t lanes,
                                             std::size_t lane,
                                             std::vector<std::uint8_t>& active,
                                             std::vector<std::uint8_t>& ok) {
  const Options& opts = compiled_.options_;
  auto run = [&](double gmin, double source_scale) {
    std::fill(active.begin(), active.begin() + static_cast<long>(lanes), 0);
    active[lane] = 1;
    ok[lane] = 0;
    // No chord during rescue: far from the solution the frozen jacobian
    // converges too slowly to be worth the bookkeeping.
    newton_lanes(lanes, active, ok, gmin, source_scale, /*allow_chord=*/false);
    return ok[lane] != 0;
  };

  // Mirror of try_dc_sequence, restricted to this lane: fresh start, then
  // gmin stepping, then source stepping — each from zeros.
  std::fill(x_[lane].begin(), x_[lane].end(), 0.0);
  if (run(opts.newton.gmin, 1.0)) return;

  if (opts.allow_gmin_stepping) {
    std::fill(x_[lane].begin(), x_[lane].end(), 0.0);
    bool laddered = true;
    for (const double g : gmin_ladder(opts.newton.gmin)) {
      if (!run(g, 1.0)) {
        laddered = false;
        break;
      }
    }
    if (laddered) return;
  }

  if (opts.allow_source_stepping) {
    std::fill(x_[lane].begin(), x_[lane].end(), 0.0);
    bool stepped = true;
    for (double scale = 0.05; scale <= 1.0 + 1e-12; scale += 0.05) {
      if (!run(opts.newton.gmin, std::min(scale, 1.0))) {
        stepped = false;
        break;
      }
    }
    if (stepped) return;
  }

  throw ConvergenceError(
      "compiled batched DC solve: lane " + std::to_string(lane) +
      " did not converge (recovery ladder exhausted)");
}

void CompiledCircuit::Workspace::solve_dc(std::size_t lanes) {
  RELSIM_REQUIRE(lanes >= 1 && lanes <= max_lanes(),
                 "Workspace::solve_dc: lane count out of range");
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    x_[lane] = compiled_.x_nom_;
  }
  std::vector<std::uint8_t> active(lanes, 1);
  std::vector<std::uint8_t> ok(lanes, 0);
  newton_lanes(lanes, active, ok, compiled_.options_.newton.gmin, 1.0,
               /*allow_chord=*/true);
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    if (!ok[lane]) rescue_lane(lanes, lane, active, ok);
  }
}

}  // namespace relsim::spice
