// Stress recording: the bridge between circuit simulation and aging models.
//
// Time-dependent degradation (Sec. 3 of the paper) depends on the electrical
// stress each device sees: gate/drain voltages, conduction duty and
// temperature for MOSFETs (NBTI/HCI/TDDB), and current density for wires
// (EM). During transient analysis every device accumulates time-weighted
// stress statistics; the aging engine then extrapolates them over the
// mission time.
#pragma once

#include <cstddef>

namespace relsim::spice {

/// Time-weighted stress statistics of one MOSFET.
class MosStressAccumulator {
 public:
  /// `on_threshold` is the |vgs| above which the device counts as "on"
  /// (conducting / under gate stress) for the duty-cycle statistic.
  explicit MosStressAccumulator(double on_threshold = 0.1)
      : on_threshold_(on_threshold) {}

  /// Adds one observation with weight `dt` (seconds of simulated time, or
  /// 1.0 for a DC operating point).
  void add(double vgs, double vds, double vbs, double ids, double dt);

  void reset();

  bool empty() const { return total_weight_ == 0.0; }
  double observed_time() const { return total_weight_; }

  /// Time-averaged |vgs| over the whole window.
  double mean_abs_vgs() const;
  /// Average |vgs| restricted to on-time (0 if never on).
  double mean_on_abs_vgs() const;
  /// Average |vds| restricted to on-time (0 if never on) — HCI stress.
  double mean_on_abs_vds() const;
  double max_abs_vgs() const { return max_abs_vgs_; }
  double max_abs_vds() const { return max_abs_vds_; }
  /// RMS drain current over the window.
  double rms_ids() const;
  /// Fraction of time with |vgs| above the on-threshold (AC stress duty).
  double duty() const;

 private:
  double on_threshold_;
  double total_weight_ = 0.0;
  double on_weight_ = 0.0;
  double sum_abs_vgs_ = 0.0;
  double sum_on_abs_vgs_ = 0.0;
  double sum_on_abs_vds_ = 0.0;
  double sum_ids2_ = 0.0;
  double max_abs_vgs_ = 0.0;
  double max_abs_vds_ = 0.0;
};

/// Time-weighted current statistics of a wire (resistor with geometry).
class WireStressAccumulator {
 public:
  void add(double current, double dt);
  void reset();

  bool empty() const { return total_weight_ == 0.0; }
  /// Signed DC (average) current.
  double mean_current() const;
  double rms_current() const;
  double peak_abs_current() const { return peak_abs_; }

 private:
  double total_weight_ = 0.0;
  double sum_i_ = 0.0;
  double sum_i2_ = 0.0;
  double peak_abs_ = 0.0;
};

}  // namespace relsim::spice
