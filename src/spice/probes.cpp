#include "spice/probes.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace relsim::spice {

namespace {

// Returns the [first, last] sample index range overlapping the window and
// validates inputs.
std::pair<std::size_t, std::size_t> window_range(
    const std::vector<double>& time, const std::vector<double>& values,
    double t_begin, double t_end) {
  RELSIM_REQUIRE(time.size() == values.size(), "time/value size mismatch");
  RELSIM_REQUIRE(time.size() >= 2, "waveform needs >= 2 samples");
  RELSIM_REQUIRE(t_end > t_begin, "empty analysis window");
  const auto lo = std::lower_bound(time.begin(), time.end(), t_begin);
  const auto hi = std::upper_bound(time.begin(), time.end(), t_end);
  RELSIM_REQUIRE(hi - lo >= 2, "analysis window contains < 2 samples");
  return {static_cast<std::size_t>(lo - time.begin()),
          static_cast<std::size_t>(hi - time.begin()) - 1};
}

template <typename Transform>
double integrate_mean(const std::vector<double>& time,
                      const std::vector<double>& values, double t_begin,
                      double t_end, Transform f) {
  const auto [first, last] = window_range(time, values, t_begin, t_end);
  double integral = 0.0;
  double span = 0.0;
  for (std::size_t i = first; i < last; ++i) {
    const double dt = time[i + 1] - time[i];
    integral += 0.5 * (f(values[i]) + f(values[i + 1])) * dt;
    span += dt;
  }
  RELSIM_REQUIRE(span > 0.0, "degenerate analysis window");
  return integral / span;
}

}  // namespace

double time_average(const std::vector<double>& time,
                    const std::vector<double>& values, double t_begin,
                    double t_end) {
  return integrate_mean(time, values, t_begin, t_end,
                        [](double v) { return v; });
}

double time_rms(const std::vector<double>& time,
                const std::vector<double>& values, double t_begin,
                double t_end) {
  return std::sqrt(integrate_mean(time, values, t_begin, t_end,
                                  [](double v) { return v * v; }));
}

double peak_to_peak(const std::vector<double>& time,
                    const std::vector<double>& values, double t_begin,
                    double t_end) {
  const auto [first, last] = window_range(time, values, t_begin, t_end);
  double lo = values[first], hi = values[first];
  for (std::size_t i = first; i <= last; ++i) {
    lo = std::min(lo, values[i]);
    hi = std::max(hi, values[i]);
  }
  return hi - lo;
}

double estimate_frequency(const std::vector<double>& time,
                          const std::vector<double>& values, double t_begin,
                          double t_end) {
  const auto [first, last] = window_range(time, values, t_begin, t_end);
  double lo = values[first], hi = values[first];
  for (std::size_t i = first; i <= last; ++i) {
    lo = std::min(lo, values[i]);
    hi = std::max(hi, values[i]);
  }
  const double mid = 0.5 * (lo + hi);
  double first_cross = 0.0, last_cross = 0.0;
  int crossings = 0;
  for (std::size_t i = first; i < last; ++i) {
    const double a = values[i] - mid;
    const double b = values[i + 1] - mid;
    if (a < 0.0 && b >= 0.0) {  // rising crossing
      const double frac = a / (a - b);
      const double tc = time[i] + frac * (time[i + 1] - time[i]);
      if (crossings == 0) first_cross = tc;
      last_cross = tc;
      ++crossings;
    }
  }
  if (crossings < 2) return 0.0;
  return static_cast<double>(crossings - 1) / (last_cross - first_cross);
}

}  // namespace relsim::spice
