#include "spice/mosfet.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"
#include "util/mathx.h"
#include "util/units.h"

namespace relsim::spice {

MosParams make_mos_params(const TechNode& tech, double w_um, double l_um,
                          bool is_pmos) {
  RELSIM_REQUIRE(w_um > 0.0 && l_um > 0.0, "device W and L must be positive");
  MosParams p;
  p.is_pmos = is_pmos;
  p.w_um = w_um;
  p.l_um = l_um;
  p.vt0 = is_pmos ? tech.vt0_pmos : tech.vt0_nmos;
  p.kp = is_pmos ? tech.kp_pmos : tech.kp_nmos;
  // lambda scales inversely with channel length (first-order CLM).
  p.lambda = tech.lambda_per_um / l_um;
  p.gamma = tech.gamma;
  p.phi = tech.phi;
  p.tox_nm = tech.tox_nm;
  return p;
}

Mosfet::Mosfet(std::string name, NodeId drain, NodeId gate, NodeId source,
               NodeId bulk, MosParams params)
    : Device(std::move(name)),
      d_(drain),
      g_(gate),
      s_(source),
      b_(bulk),
      params_(params),
      stress_(std::abs(params.vt0) * 0.75) {
  RELSIM_REQUIRE(params_.w_um > 0.0 && params_.l_um > 0.0,
                 "device W and L must be positive");
  RELSIM_REQUIRE(params_.kp > 0.0, "KP must be positive");
  RELSIM_REQUIRE(params_.phi > 0.0, "phi must be positive");
  RELSIM_REQUIRE(params_.ss_v > 0.0, "smoothing voltage must be positive");
  RELSIM_REQUIRE(!params_.is_pmos || params_.vt0 <= 0.0,
                 "PMOS vt0 must be negative");
  RELSIM_REQUIRE(params_.is_pmos || params_.vt0 >= 0.0,
                 "NMOS vt0 must be non-negative");
}

void Mosfet::set_degradation(const MosDegradation& d) {
  RELSIM_REQUIRE(d.dvt >= 0.0, "aging dvt is a magnitude (>= 0)");
  RELSIM_REQUIRE(d.beta_factor > 0.0 && d.lambda_factor > 0.0,
                 "degradation factors must stay positive");
  RELSIM_REQUIRE(d.g_leak_gs >= 0.0 && d.g_leak_gd >= 0.0,
                 "gate leakage conductances must be non-negative");
  degradation_ = d;
}

double Mosfet::vt_effective_signed() const {
  const double type_sign = params_.is_pmos ? -1.0 : 1.0;
  return params_.vt0 + variation_.dvt + type_sign * degradation_.dvt;
}

simd::MosDeviceConsts Mosfet::eval_consts() const {
  simd::MosDeviceConsts c;
  c.type_sign = params_.is_pmos ? -1.0 : 1.0;
  c.gamma = params_.gamma;
  c.phi = params_.phi;
  c.ss_v = params_.ss_v;
  return c;
}

double Mosfet::eval_vt_base() const {
  const double s = params_.is_pmos ? -1.0 : 1.0;
  const double dtemp = params_.temp_k - params_.tnom_k;
  return s * (params_.vt0 + variation_.dvt) + params_.vt_tc_v_per_k * dtemp +
         degradation_.dvt;
}

double Mosfet::eval_beta() const {
  return params_.beta() * (1.0 + variation_.dbeta_rel) *
         degradation_.beta_factor *
         std::pow(params_.temp_k / params_.tnom_k, params_.mobility_exp);
}

double Mosfet::eval_lambda() const {
  return params_.lambda * degradation_.lambda_factor;
}

MosOperatingPoint Mosfet::evaluate(double vd, double vg, double vs,
                                   double vb) const {
  // The device math lives in simd::mos_eval_core, shared verbatim with the
  // batched lane kernels so this per-device path stays their golden oracle.
  const simd::MosEvalResult r =
      simd::mos_eval_core(eval_consts(), eval_vt_base(), eval_beta(),
                          eval_lambda(), vd, vg, vs, vb);
  MosOperatingPoint op;
  op.id = r.id;
  op.gm = r.gm;
  op.gds = r.gds;
  op.gmb = r.gmb;
  op.vgs = vg - vs;
  op.vds = vd - vs;
  op.vbs = vb - vs;
  op.vov = r.vov;
  op.vt_eff = r.vt_eff;
  op.saturated = r.saturated;
  op.reversed = r.reversed;
  return op;
}

MosOperatingPoint Mosfet::operating_point(const Vector& x) const {
  return evaluate(voltage(x, d_), voltage(x, g_), voltage(x, s_),
                  voltage(x, b_));
}

void Mosfet::stamp(StampArgs& args) {
  const double vd = args.v(d_), vg = args.v(g_), vs = args.v(s_),
               vb = args.v(b_);
  const MosOperatingPoint op = evaluate(vd, vg, vs, vb);

  // Current into the actual drain I_D = f(vg, vd, vs, vb), with the
  // actual-frame partials published by evaluate(); the source partial is
  // the remainder (the current depends only on voltage differences).
  const int rd = StampArgs::unknown_of(d_);
  const int rs = StampArgs::unknown_of(s_);
  const int cg = StampArgs::unknown_of(g_);
  const int cd = StampArgs::unknown_of(d_);
  const int cs = StampArgs::unknown_of(s_);
  const int cb = StampArgs::unknown_of(b_);

  const double gss = -(op.gm + op.gds + op.gmb);
  // Row for the drain node (current leaving d through the channel = +I_D).
  args.add_jac(rd, cg, op.gm);
  args.add_jac(rd, cd, op.gds);
  args.add_jac(rd, cs, gss);
  args.add_jac(rd, cb, op.gmb);
  // Row for the source node: I_S = -I_D.
  args.add_jac(rs, cg, -op.gm);
  args.add_jac(rs, cd, -op.gds);
  args.add_jac(rs, cs, -gss);
  args.add_jac(rs, cb, -op.gmb);

  // Newton companion current: I_D(v*) - J*v* flows d -> s.
  const double linear = op.gm * vg + op.gds * vd + gss * vs + op.gmb * vb;
  args.add_current(d_, s_, op.id - linear);

  // Post-breakdown gate leakage paths (TDDB, Sec. 3.1).
  if (degradation_.g_leak_gs > 0.0)
    args.add_conductance(g_, s_, degradation_.g_leak_gs);
  if (degradation_.g_leak_gd > 0.0)
    args.add_conductance(g_, d_, degradation_.g_leak_gd);

  // Internal capacitances (transient only).
  if (args.mode == AnalysisMode::kTransient) {
    integrator_ = args.integrator;
    stamp_cap(args, g_, s_, cgs(), cap_gs_);
    stamp_cap(args, g_, d_, cgd(), cap_gd_);
    stamp_cap(args, d_, b_, cdb(), cap_db_);
  }
}

void Mosfet::stamp_ac(AcStampArgs& args) {
  // Small-signal model at the DC operating point: gm/gds/gmb conductances
  // (actual-frame partials, like the DC jacobian) plus the internal
  // capacitances and any post-breakdown gate leakage.
  const MosOperatingPoint op =
      evaluate(args.v_op(d_), args.v_op(g_), args.v_op(s_), args.v_op(b_));
  const int rd = StampArgs::unknown_of(d_);
  const int rs = StampArgs::unknown_of(s_);
  const int cg = StampArgs::unknown_of(g_);
  const int cd = StampArgs::unknown_of(d_);
  const int cs = StampArgs::unknown_of(s_);
  const int cb = StampArgs::unknown_of(b_);
  const double gss = -(op.gm + op.gds + op.gmb);
  args.add_jac(rd, cg, Complex(op.gm, 0.0));
  args.add_jac(rd, cd, Complex(op.gds, 0.0));
  args.add_jac(rd, cs, Complex(gss, 0.0));
  args.add_jac(rd, cb, Complex(op.gmb, 0.0));
  args.add_jac(rs, cg, Complex(-op.gm, 0.0));
  args.add_jac(rs, cd, Complex(-op.gds, 0.0));
  args.add_jac(rs, cs, Complex(-gss, 0.0));
  args.add_jac(rs, cb, Complex(-op.gmb, 0.0));

  if (degradation_.g_leak_gs > 0.0)
    args.add_admittance(g_, s_, Complex(degradation_.g_leak_gs, 0.0));
  if (degradation_.g_leak_gd > 0.0)
    args.add_admittance(g_, d_, Complex(degradation_.g_leak_gd, 0.0));

  args.add_admittance(g_, s_, Complex(0.0, args.omega * cgs()));
  args.add_admittance(g_, d_, Complex(0.0, args.omega * cgd()));
  args.add_admittance(d_, b_, Complex(0.0, args.omega * cdb()));
}

double Mosfet::cgs() const {
  const double cgate = units::cox_per_area(params_.tox_nm) *
                       units::um_to_m(params_.w_um) *
                       units::um_to_m(params_.l_um);
  return params_.cap_scale * (2.0 / 3.0) * cgate;
}

double Mosfet::cgd() const {
  const double cgate = units::cox_per_area(params_.tox_nm) *
                       units::um_to_m(params_.w_um) *
                       units::um_to_m(params_.l_um);
  return params_.cap_scale * (1.0 / 3.0) * cgate;
}

double Mosfet::cdb() const {
  const double cgate = units::cox_per_area(params_.tox_nm) *
                       units::um_to_m(params_.w_um) *
                       units::um_to_m(params_.l_um);
  return params_.cap_scale * 0.5 * cgate;
}

void Mosfet::stamp_cap(StampArgs& args, NodeId a, NodeId b, double c,
                       CapState& state) const {
  if (c <= 0.0) return;
  const bool trap = args.integrator == Integrator::kTrapezoidal;
  const double geq = (trap ? 2.0 : 1.0) * c / args.dt;
  const double history =
      trap ? geq * state.v_prev + state.i_prev : geq * state.v_prev;
  args.add_conductance(a, b, geq);
  args.add_current(b, a, history);
}

void Mosfet::accept_cap(const Vector& x, NodeId a, NodeId b, double c,
                        CapState& state, double dt) const {
  if (c <= 0.0 || dt <= 0.0) return;
  const bool trap = integrator_ == Integrator::kTrapezoidal;
  const double geq = (trap ? 2.0 : 1.0) * c / dt;
  const double v = voltage(x, a) - voltage(x, b);
  const double i = trap ? geq * (v - state.v_prev) - state.i_prev
                        : geq * (v - state.v_prev);
  state.v_prev = v;
  state.i_prev = i;
}

void Mosfet::begin_analysis(AnalysisMode mode, const Vector& x) {
  if (mode != AnalysisMode::kTransient) return;
  cap_gs_ = {voltage(x, g_) - voltage(x, s_), 0.0};
  cap_gd_ = {voltage(x, g_) - voltage(x, d_), 0.0};
  cap_db_ = {voltage(x, d_) - voltage(x, b_), 0.0};
}

void Mosfet::accept_step(const Vector& x, double /*time*/, double dt) {
  accept_cap(x, g_, s_, cgs(), cap_gs_, dt);
  accept_cap(x, g_, d_, cgd(), cap_gd_, dt);
  accept_cap(x, d_, b_, cdb(), cap_db_, dt);
  if (record_stress_ && dt > 0.0) record_stress_point(x, dt);
}

void Mosfet::enable_stress_recording(bool enabled) {
  record_stress_ = enabled;
}

void Mosfet::record_stress_point(const Vector& x, double weight) {
  const MosOperatingPoint op = operating_point(x);
  stress_.add(op.vgs, op.vds, op.vbs, op.id, weight);
}

}  // namespace relsim::spice
