#include "spice/netlist_parser.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

#include "tech/tech.h"
#include "util/error.h"

namespace relsim::spice {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

[[noreturn]] void fail(int line, const std::string& message) {
  throw NetlistError("netlist line " + std::to_string(line) + ": " + message);
}

// Splits a card into tokens; parentheses and '=' become separators that
// keep function-style sources easy to scan: "SIN(0 1 2k)" ->
// {"sin", "(", "0", "1", "2k", ")"}.
std::vector<std::string> tokenize(const std::string& text) {
  std::vector<std::string> tokens;
  std::string current;
  auto flush = [&]() {
    if (!current.empty()) {
      tokens.push_back(current);
      current.clear();
    }
  };
  for (char ch : text) {
    if (std::isspace(static_cast<unsigned char>(ch)) || ch == ',') {
      flush();
    } else if (ch == '(' || ch == ')' || ch == '=') {
      flush();
      tokens.push_back(std::string(1, ch));
    } else {
      current.push_back(ch);
    }
  }
  flush();
  return tokens;
}

struct MosModelCard {
  bool is_pmos = false;
  std::map<std::string, double> params;  // lowercase keys
};

struct DiodeModelCard {
  Diode::Params params;
};

// Parser state shared across cards.
struct ParserState {
  Circuit* circuit = nullptr;
  const TechNode* tech = nullptr;
  double temp_k = -1.0;  ///< pending .temp directive (applied at the end)
  std::map<std::string, MosModelCard> mos_models;
  std::map<std::string, DiodeModelCard> diode_models;
};

// A token cursor over one (continued) card.
class Cursor {
 public:
  Cursor(std::vector<std::string> tokens, int line)
      : tokens_(std::move(tokens)), line_(line) {}

  bool done() const { return pos_ >= tokens_.size(); }
  int line() const { return line_; }

  const std::string& peek() const {
    if (done()) fail(line_, "unexpected end of card");
    return tokens_[pos_];
  }

  std::string next(const std::string& what) {
    if (done()) fail(line_, "missing " + what);
    return tokens_[pos_++];
  }

  double number(const std::string& what) {
    const std::string tok = next(what);
    try {
      return parse_spice_number(tok);
    } catch (const Error&) {
      fail(line_, "bad " + what + " '" + tok + "'");
    }
  }

  void expect(const std::string& token, const std::string& context) {
    const std::string tok = next(context);
    if (lower(tok) != token) {
      fail(line_, "expected '" + token + "' in " + context + ", got '" +
                      tok + "'");
    }
  }

  bool accept(const std::string& token) {
    if (!done() && lower(tokens_[pos_]) == token) {
      ++pos_;
      return true;
    }
    return false;
  }

 private:
  std::vector<std::string> tokens_;
  std::size_t pos_ = 0;
  int line_;
};

// Parses "<key> = <number>" pairs until the cursor runs out; unknown keys
// go through `sink` which returns false to reject.
template <typename Sink>
void parse_kv_pairs(Cursor& cur, Sink&& sink) {
  while (!cur.done()) {
    const std::string key = lower(cur.next("parameter name"));
    cur.expect("=", "parameter assignment");
    const double value = cur.number("parameter value");
    if (!sink(key, value)) {
      fail(cur.line(), "unknown parameter '" + key + "'");
    }
  }
}

std::unique_ptr<Waveform> parse_source(Cursor& cur, double* ac_magnitude) {
  std::string tok = cur.next("source value");
  const std::string kind = lower(tok);
  std::unique_ptr<Waveform> wave;
  if (kind == "dc") {
    wave = std::make_unique<DcWaveform>(cur.number("DC value"));
  } else if (kind == "sin") {
    cur.expect("(", "SIN source");
    const double off = cur.number("SIN offset");
    const double ampl = cur.number("SIN amplitude");
    const double freq = cur.number("SIN frequency");
    double delay = 0.0;
    if (!cur.accept(")")) {
      delay = cur.number("SIN delay");
      cur.expect(")", "SIN source");
    }
    wave = std::make_unique<SineWaveform>(off, ampl, freq, delay);
  } else if (kind == "pulse") {
    cur.expect("(", "PULSE source");
    const double v1 = cur.number("PULSE low");
    const double v2 = cur.number("PULSE high");
    const double delay = cur.number("PULSE delay");
    const double rise = cur.number("PULSE rise");
    const double fall = cur.number("PULSE fall");
    const double width = cur.number("PULSE width");
    const double period = cur.number("PULSE period");
    cur.expect(")", "PULSE source");
    wave = std::make_unique<PulseWaveform>(v1, v2, delay, rise, fall, width,
                                           period);
  } else if (kind == "pwl") {
    cur.expect("(", "PWL source");
    std::vector<double> ts, vs;
    while (!cur.accept(")")) {
      ts.push_back(cur.number("PWL time"));
      vs.push_back(cur.number("PWL value"));
    }
    wave = std::make_unique<PwlWaveform>(std::move(ts), std::move(vs));
  } else {
    // Bare number = DC.
    try {
      wave = std::make_unique<DcWaveform>(parse_spice_number(tok));
    } catch (const Error&) {
      fail(cur.line(), "unrecognized source '" + tok + "'");
    }
  }
  // Optional trailing "AC <magnitude>".
  if (ac_magnitude != nullptr && cur.accept("ac")) {
    *ac_magnitude = cur.number("AC magnitude");
  }
  return wave;
}

void parse_resistor(ParserState& st, const std::string& name, Cursor& cur) {
  const NodeId a = st.circuit->node(cur.next("node"));
  const NodeId b = st.circuit->node(cur.next("node"));
  auto& r = st.circuit->add_resistor(name, a, b, cur.number("resistance"));
  if (cur.accept("wire")) {
    WireGeometry geom;
    parse_kv_pairs(cur, [&](const std::string& key, double value) {
      if (key == "w") geom.width_um = value * 1e6;       // metres -> um
      else if (key == "l") geom.length_um = value * 1e6;
      else if (key == "t") geom.thickness_um = value * 1e6;
      else return false;
      return true;
    });
    r.set_wire_geometry(geom);
  } else if (!cur.done()) {
    fail(cur.line(), "trailing tokens on resistor card");
  }
}

void parse_mosfet(ParserState& st, const std::string& name, Cursor& cur) {
  const NodeId d = st.circuit->node(cur.next("drain"));
  const NodeId g = st.circuit->node(cur.next("gate"));
  const NodeId s = st.circuit->node(cur.next("source"));
  const NodeId b = st.circuit->node(cur.next("bulk"));
  const std::string model = lower(cur.next("model name"));

  MosParams params;
  bool have_base = false;
  if (model == "nmos" || model == "pmos") {
    if (st.tech == nullptr) {
      fail(cur.line(),
           "builtin model '" + model + "' needs a preceding .tech card");
    }
    params = make_mos_params(*st.tech, 1.0, 0.1, model == "pmos");
    have_base = true;
  }
  const auto it = st.mos_models.find(model);
  if (it != st.mos_models.end()) {
    if (!have_base) {
      params.is_pmos = it->second.is_pmos;
      // Unset vt0 sign sanity is checked by the device constructor.
    }
    params.is_pmos = it->second.is_pmos;
    for (const auto& [key, value] : it->second.params) {
      if (key == "vt0") params.vt0 = value;
      else if (key == "kp") params.kp = value;
      else if (key == "lambda") params.lambda = value;
      else if (key == "gamma") params.gamma = value;
      else if (key == "phi") params.phi = value;
      else if (key == "tox") params.tox_nm = value;  // nm
    }
    have_base = true;
  }
  if (!have_base) fail(cur.line(), "unknown MOS model '" + model + "'");

  parse_kv_pairs(cur, [&](const std::string& key, double value) {
    if (key == "w") params.w_um = value * 1e6;
    else if (key == "l") params.l_um = value * 1e6;
    else return false;
    return true;
  });
  st.circuit->add_mosfet(name, d, g, s, b, params);
}

void parse_model_card(ParserState& st, Cursor& cur) {
  const std::string name = lower(cur.next("model name"));
  const std::string type = lower(cur.next("model type"));
  if (type == "nmos" || type == "pmos") {
    MosModelCard card;
    card.is_pmos = (type == "pmos");
    parse_kv_pairs(cur, [&](const std::string& key, double value) {
      if (key == "vt0" || key == "kp" || key == "lambda" || key == "gamma" ||
          key == "phi" || key == "tox") {
        card.params[key] = value;
        return true;
      }
      return false;
    });
    st.mos_models[name] = card;
  } else if (type == "d") {
    DiodeModelCard card;
    parse_kv_pairs(cur, [&](const std::string& key, double value) {
      if (key == "is") card.params.is = value;
      else if (key == "n") card.params.n = value;
      else if (key == "temp") card.params.temp_k = value;
      else return false;
      return true;
    });
    st.diode_models[name] = card;
  } else {
    fail(cur.line(), "unknown model type '" + type + "'");
  }
}

void parse_card(ParserState& st, const std::string& card, int line) {
  Cursor cur(tokenize(card), line);
  if (cur.done()) return;
  const std::string head = cur.next("card");
  const std::string head_lc = lower(head);

  if (head_lc[0] == '.') {
    if (head_lc == ".end") return;
    if (head_lc == ".tech") {
      const std::string node = cur.next("technology name");
      try {
        st.tech = &technology(node);
      } catch (const Error&) {
        fail(line, "unknown technology node '" + node + "'");
      }
      return;
    }
    if (head_lc == ".model") {
      parse_model_card(st, cur);
      return;
    }
    if (head_lc == ".temp") {
      st.temp_k = cur.number("temperature (K)");
      if (st.temp_k <= 0.0) fail(line, "temperature must be positive");
      return;
    }
    fail(line, "unknown directive '" + head + "'");
  }

  switch (head_lc[0]) {
    case 'r':
      parse_resistor(st, head, cur);
      break;
    case 'c': {
      const NodeId a = st.circuit->node(cur.next("node"));
      const NodeId b = st.circuit->node(cur.next("node"));
      st.circuit->add_capacitor(head, a, b, cur.number("capacitance"));
      break;
    }
    case 'l': {
      const NodeId a = st.circuit->node(cur.next("node"));
      const NodeId b = st.circuit->node(cur.next("node"));
      st.circuit->add_inductor(head, a, b, cur.number("inductance"));
      break;
    }
    case 'v': {
      const NodeId p = st.circuit->node(cur.next("node"));
      const NodeId m = st.circuit->node(cur.next("node"));
      double ac_mag = 0.0;
      auto wave = parse_source(cur, &ac_mag);
      auto& src = st.circuit->add_vsource(head, p, m, std::move(wave));
      if (ac_mag != 0.0) src.set_ac_magnitude(ac_mag);
      break;
    }
    case 'i': {
      const NodeId p = st.circuit->node(cur.next("node"));
      const NodeId m = st.circuit->node(cur.next("node"));
      auto wave = parse_source(cur, nullptr);
      st.circuit->add_isource(head, p, m, std::move(wave));
      break;
    }
    case 'e': {
      const NodeId p = st.circuit->node(cur.next("node"));
      const NodeId m = st.circuit->node(cur.next("node"));
      const NodeId cp = st.circuit->node(cur.next("node"));
      const NodeId cm = st.circuit->node(cur.next("node"));
      st.circuit->add_vcvs(head, p, m, cp, cm, cur.number("gain"));
      break;
    }
    case 'd': {
      const NodeId a = st.circuit->node(cur.next("anode"));
      const NodeId c = st.circuit->node(cur.next("cathode"));
      Diode::Params params;
      if (!cur.done()) {
        const std::string model = lower(cur.next("model name"));
        const auto it = st.diode_models.find(model);
        if (it == st.diode_models.end()) {
          fail(line, "unknown diode model '" + model + "'");
        }
        params = it->second.params;
      }
      st.circuit->add_diode(head, a, c, params);
      break;
    }
    case 'm':
      parse_mosfet(st, head, cur);
      break;
    default:
      fail(line, "unknown card '" + head + "'");
  }
}

}  // namespace

double parse_spice_number(const std::string& token) {
  RELSIM_REQUIRE(!token.empty(), "empty number");
  std::size_t pos = 0;
  double value = 0.0;
  try {
    value = std::stod(token, &pos);
  } catch (const std::exception&) {
    throw Error("not a number: '" + token + "'");
  }
  std::string suffix = lower(token.substr(pos));
  if (suffix.empty()) return value;
  // Trailing unit letters after the scale are ignored (SPICE habit: 10kohm,
  // 5pf), so only the leading scale characters matter.
  if (suffix.rfind("meg", 0) == 0) return value * 1e6;
  switch (suffix[0]) {
    case 'f': return value * 1e-15;
    case 'p': return value * 1e-12;
    case 'n': return value * 1e-9;
    case 'u': return value * 1e-6;
    case 'm': return value * 1e-3;
    case 'k': return value * 1e3;
    case 'g': return value * 1e9;
    case 't': return value * 1e12;
    default:
      throw Error("unknown magnitude suffix on '" + token + "'");
  }
}

ParsedNetlist parse_netlist(const std::string& text) {
  ParsedNetlist out;
  out.circuit = std::make_unique<Circuit>();
  ParserState st;
  st.circuit = out.circuit.get();

  std::istringstream stream(text);
  std::string raw;
  int line_no = 0;
  bool have_title = false;
  std::string pending_card;
  int pending_line = 0;

  auto flush_pending = [&]() {
    if (!pending_card.empty()) {
      parse_card(st, pending_card, pending_line);
      pending_card.clear();
    }
  };

  while (std::getline(stream, raw)) {
    ++line_no;
    // Strip comments: '*' at start, "//" or ';' anywhere.
    std::string card = raw;
    if (!card.empty() && card[0] == '*') card.clear();
    const auto semi = card.find(';');
    if (semi != std::string::npos) card.resize(semi);
    // Trim.
    const auto first = card.find_first_not_of(" \t\r");
    if (first == std::string::npos) {
      card.clear();
    } else {
      card = card.substr(first);
    }
    if (!have_title) {
      // SPICE rule: the first line is the title, never a card.
      out.title = card;
      have_title = true;
      continue;
    }
    if (card.empty()) continue;
    if (card[0] == '+') {
      if (pending_card.empty()) fail(line_no, "continuation without a card");
      pending_card += ' ' + card.substr(1);
      continue;
    }
    flush_pending();
    pending_card = card;
    pending_line = line_no;
  }
  flush_pending();
  out.tech = st.tech;
  if (st.temp_k > 0.0) out.circuit->set_temperature(st.temp_k);
  return out;
}

ParsedNetlist parse_netlist_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw NetlistError("cannot open netlist file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_netlist(buffer.str());
}

}  // namespace relsim::spice
