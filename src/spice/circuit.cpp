#include "spice/circuit.h"

#include "util/error.h"

namespace relsim::spice {

NodeId Circuit::node(const std::string& name) {
  if (name == "0" || name == "gnd" || name == "GND") return kGround;
  const auto it = node_ids_.find(name);
  if (it != node_ids_.end()) return it->second;
  const NodeId id = next_node_++;
  node_ids_.emplace(name, id);
  node_names_.push_back(name);
  return id;
}

NodeId Circuit::find_node(const std::string& name) const {
  if (name == "0" || name == "gnd" || name == "GND") return kGround;
  const auto it = node_ids_.find(name);
  RELSIM_REQUIRE(it != node_ids_.end(), "unknown node: " + name);
  return it->second;
}

const std::string& Circuit::node_name(NodeId id) const {
  RELSIM_REQUIRE(id >= 0 && id < next_node_, "node id out of range");
  return node_names_[static_cast<std::size_t>(id)];
}

int Circuit::unknown_count() const {
  RELSIM_REQUIRE(assembled_, "circuit not assembled yet");
  return node_count() + extra_unknowns_;
}

Device& Circuit::add_device(std::unique_ptr<Device> device) {
  RELSIM_REQUIRE(device != nullptr, "null device");
  RELSIM_REQUIRE(device_index_.find(device->name()) == device_index_.end(),
                 "duplicate device name: " + device->name());
  Device& ref = *device;
  device_index_.emplace(device->name(), &ref);
  devices_.push_back(std::move(device));
  assembled_ = false;
  solver_cache_.invalidate_structure();
  return ref;
}

Resistor& Circuit::add_resistor(const std::string& name, NodeId a, NodeId b,
                                double resistance) {
  return static_cast<Resistor&>(
      add_device(std::make_unique<Resistor>(name, a, b, resistance)));
}

Capacitor& Circuit::add_capacitor(const std::string& name, NodeId a, NodeId b,
                                  double capacitance) {
  return static_cast<Capacitor&>(
      add_device(std::make_unique<Capacitor>(name, a, b, capacitance)));
}

Inductor& Circuit::add_inductor(const std::string& name, NodeId a, NodeId b,
                                double inductance) {
  return static_cast<Inductor&>(
      add_device(std::make_unique<Inductor>(name, a, b, inductance)));
}

VoltageSource& Circuit::add_vsource(const std::string& name, NodeId plus,
                                    NodeId minus, double dc_value) {
  return add_vsource(name, plus, minus,
                     std::make_unique<DcWaveform>(dc_value));
}

VoltageSource& Circuit::add_vsource(const std::string& name, NodeId plus,
                                    NodeId minus,
                                    std::unique_ptr<Waveform> waveform) {
  return static_cast<VoltageSource&>(add_device(
      std::make_unique<VoltageSource>(name, plus, minus, std::move(waveform))));
}

CurrentSource& Circuit::add_isource(const std::string& name, NodeId from,
                                    NodeId to, double dc_value) {
  return add_isource(name, from, to, std::make_unique<DcWaveform>(dc_value));
}

CurrentSource& Circuit::add_isource(const std::string& name, NodeId from,
                                    NodeId to,
                                    std::unique_ptr<Waveform> waveform) {
  return static_cast<CurrentSource&>(add_device(
      std::make_unique<CurrentSource>(name, from, to, std::move(waveform))));
}

Vcvs& Circuit::add_vcvs(const std::string& name, NodeId plus, NodeId minus,
                        NodeId control_plus, NodeId control_minus,
                        double gain) {
  return static_cast<Vcvs&>(add_device(std::make_unique<Vcvs>(
      name, plus, minus, control_plus, control_minus, gain)));
}

Diode& Circuit::add_diode(const std::string& name, NodeId anode,
                          NodeId cathode, Diode::Params params) {
  return static_cast<Diode&>(
      add_device(std::make_unique<Diode>(name, anode, cathode, params)));
}

Mosfet& Circuit::add_mosfet(const std::string& name, NodeId drain, NodeId gate,
                            NodeId source, NodeId bulk,
                            const MosParams& params) {
  return static_cast<Mosfet&>(add_device(
      std::make_unique<Mosfet>(name, drain, gate, source, bulk, params)));
}

Device& Circuit::device(const std::string& name) {
  const auto it = device_index_.find(name);
  RELSIM_REQUIRE(it != device_index_.end(), "unknown device: " + name);
  return *it->second;
}

const Device& Circuit::device(const std::string& name) const {
  const auto it = device_index_.find(name);
  RELSIM_REQUIRE(it != device_index_.end(), "unknown device: " + name);
  return *it->second;
}

std::vector<Mosfet*> Circuit::mosfets() {
  std::vector<Mosfet*> out;
  for (const auto& d : devices_) {
    if (auto* m = dynamic_cast<Mosfet*>(d.get())) out.push_back(m);
  }
  return out;
}

std::vector<Resistor*> Circuit::wires() {
  std::vector<Resistor*> out;
  for (const auto& d : devices_) {
    if (auto* r = dynamic_cast<Resistor*>(d.get())) {
      if (r->wire_geometry().has_value()) out.push_back(r);
    }
  }
  return out;
}

void Circuit::enable_stress_recording() {
  for (Mosfet* m : mosfets()) {
    m->enable_stress_recording();
    m->reset_stress();
  }
  for (Resistor* r : wires()) r->reset_stress();
}

void Circuit::set_temperature(double temp_k) {
  RELSIM_REQUIRE(temp_k > 0.0, "temperature must be positive");
  for (const auto& d : devices_) {
    if (auto* m = dynamic_cast<Mosfet*>(d.get())) {
      m->mutable_params().temp_k = temp_k;
    } else if (auto* diode = dynamic_cast<Diode*>(d.get())) {
      diode->set_temperature(temp_k);
    }
  }
}

void Circuit::assemble() {
  if (assembled_) return;
  int base = node_count();
  for (const auto& d : devices_) {
    const int extra = d->extra_unknowns();
    if (extra > 0) {
      d->set_extra_base(base);
      base += extra;
    }
  }
  extra_unknowns_ = base - node_count();
  assembled_ = true;
}

}  // namespace relsim::spice
