// Per-circuit linear-solver state reused across Newton iterations,
// timesteps and sweep points.
//
// The Newton loop spends essentially all of its time assembling and
// factorizing the MNA Jacobian. Its sparsity pattern is a property of the
// circuit topology alone, so it is captured once (a stamp pass that records
// positions instead of values), and the sparse LU's symbolic analysis —
// elimination reach and pivot order — is likewise computed once and reused
// by numeric-only refactorizations on every subsequent iteration. The cache
// lives on the Circuit and is invalidated when a device is added.
#pragma once

#include <memory>

#include "linalg/sparse_lu.h"
#include "linalg/sparse_matrix.h"

namespace relsim::spice {

/// Linear-solver observability counters, exposed on analysis results.
struct SolverStats {
  long dense_factorizations = 0;  ///< full dense LU runs (small circuits)
  long sparse_symbolic_factorizations = 0;  ///< pattern + pivot-order builds
  long sparse_numeric_refactorizations = 0;  ///< symbolic-structure reuses
  long pattern_builds = 0;    ///< stamp-pattern capture passes
  long dense_fallbacks = 0;   ///< sparse pivot failures rescued densely
  long complex_factorizations = 0;  ///< AC frequency-point complex LU runs
  long newton_iterations = 0;
};

inline SolverStats operator+(const SolverStats& a, const SolverStats& b) {
  SolverStats s;
  s.dense_factorizations = a.dense_factorizations + b.dense_factorizations;
  s.sparse_symbolic_factorizations =
      a.sparse_symbolic_factorizations + b.sparse_symbolic_factorizations;
  s.sparse_numeric_refactorizations =
      a.sparse_numeric_refactorizations + b.sparse_numeric_refactorizations;
  s.pattern_builds = a.pattern_builds + b.pattern_builds;
  s.dense_fallbacks = a.dense_fallbacks + b.dense_fallbacks;
  s.complex_factorizations =
      a.complex_factorizations + b.complex_factorizations;
  s.newton_iterations = a.newton_iterations + b.newton_iterations;
  return s;
}

inline SolverStats operator-(const SolverStats& a, const SolverStats& b) {
  SolverStats d;
  d.dense_factorizations = a.dense_factorizations - b.dense_factorizations;
  d.sparse_symbolic_factorizations =
      a.sparse_symbolic_factorizations - b.sparse_symbolic_factorizations;
  d.sparse_numeric_refactorizations =
      a.sparse_numeric_refactorizations - b.sparse_numeric_refactorizations;
  d.pattern_builds = a.pattern_builds - b.pattern_builds;
  d.dense_fallbacks = a.dense_fallbacks - b.dense_fallbacks;
  d.complex_factorizations =
      a.complex_factorizations - b.complex_factorizations;
  d.newton_iterations = a.newton_iterations - b.newton_iterations;
  return d;
}

class SolverCache {
 public:
  bool pattern_valid = false;
  std::size_t pattern_n = 0;  ///< unknown count the pattern was built for
  SparsityPattern pattern;
  SparseMatrix matrix;  ///< values zeroed and restamped each iteration
  std::unique_ptr<SparseLuFactorization> lu;  ///< symbolic structure holder
  SolverStats stats;  ///< cumulative; analyses report per-run deltas

  /// Drops the pattern and factorization (topology changed); keeps stats.
  void invalidate_structure() {
    pattern_valid = false;
    pattern_n = 0;
    // The recorded positions must go too: the next capture pass appends to
    // `pattern`, so stale entries would otherwise accumulate across
    // topology changes (wasted fill-in, and wrong structure entirely if a
    // branch-current index is reassigned to a different device).
    pattern.clear();
    lu.reset();
  }
};

}  // namespace relsim::spice
