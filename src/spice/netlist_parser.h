// SPICE-style netlist parser.
//
// Accepts the classic card format so circuits can live in text files
// instead of C++:
//
//   bias stage example            <- first line is the title (SPICE rule)
//   * comment
//   .tech 65nm                    <- selects a relsim technology node
//   VDD vdd 0 1.1
//   VIN in  0 SIN(0.55 0.01 1e6)
//   RD  vdd d 2k
//   M1  d in 0 0 nmos W=2u L=0.1u
//   C1  d 0 5f
//   .end
//
// Supported cards:
//   R<name> n1 n2 value [WIRE W=<um> L=<um> T=<um>]      resistor (wire)
//   C<name> n1 n2 value                                  capacitor
//   L<name> n1 n2 value                                  inductor
//   V<name> n+ n- <src> [AC mag]                         voltage source
//   I<name> n+ n- <src>                                  current source
//   E<name> p m cp cm gain                               VCVS
//   D<name> a c [model]                                  diode
//   M<name> d g s b <model> W=.. L=..                    MOSFET
//   .tech <node>          technology node ("65nm", "0.18um", ...)
//   .temp <kelvin>        operating temperature of all devices
//   .model <name> NMOS|PMOS|D [param=value ...]          device models
//   .end                  optional terminator
//
// Sources: a bare number (DC), DC <v>, SIN(off ampl freq [delay]),
// PULSE(v1 v2 delay rise fall width period), PWL(t1 v1 t2 v2 ...).
// Numbers accept SPICE suffixes: f p n u m k meg g t (case-insensitive;
// 'M'/'m' is milli, "MEG" is mega). Lines starting with '+' continue the
// previous card; '*' starts a comment; everything is case-insensitive
// except node and device names.
//
// MOSFET models: "nmos"/"pmos" resolve against the active .tech node;
// .model cards may override VT0, KP, LAMBDA (1/V), GAMMA, PHI, TOX (nm).
#pragma once

#include <memory>
#include <string>

#include "spice/circuit.h"
#include "tech/tech.h"

namespace relsim::spice {

/// Thrown on malformed netlists; the message carries the line number.
class NetlistError : public Error {
 public:
  explicit NetlistError(const std::string& what) : Error(what) {}
};

struct ParsedNetlist {
  std::string title;
  std::unique_ptr<Circuit> circuit;
  /// The node selected by the last .tech card (nullptr when absent).
  const TechNode* tech = nullptr;
};

/// Parses a netlist from text (first line = title).
ParsedNetlist parse_netlist(const std::string& text);

/// Parses a netlist file.
ParsedNetlist parse_netlist_file(const std::string& path);

/// Parses a single SPICE number with magnitude suffix ("2.5k" -> 2500).
/// Exposed for tests and other text frontends.
double parse_spice_number(const std::string& token);

}  // namespace relsim::spice
