// MOSFET device model.
//
// A level-1 (Shichman-Hodges) square-law model with channel-length
// modulation, body effect, and a softplus-smoothed overdrive that gives a
// continuous (C1) subthreshold-to-strong-inversion transition — enough
// physics for every effect the paper discusses at circuit level, while
// keeping Newton iteration robust.
//
// The device carries two extra parameter sets on top of the nominal ones:
//  - MosVariation: the time-zero mismatch sampled from the Pelgrom model
//    (Sec. 2 of the paper), and
//  - MosDegradation: the time-dependent drift computed by the aging engine
//    (Sec. 3): |VT| shift (NBTI/HCI), beta/mobility degradation, output-
//    resistance change, and post-breakdown gate leakage (TDDB).
// Fig. 2 of the paper is exactly the I_DS-V_DS characteristic of this model
// with and without a populated MosDegradation.
#pragma once

#include "simd/mos_eval_core.h"
#include "spice/device.h"
#include "spice/stress.h"
#include "tech/tech.h"

namespace relsim::spice {

/// Nominal model parameters. W/L in micrometres, voltages in volts.
struct MosParams {
  bool is_pmos = false;
  double w_um = 1.0;
  double l_um = 0.1;
  double vt0 = 0.35;         ///< signed threshold (negative for PMOS), V
  double kp = 400e-6;        ///< mu*Cox, A/V^2
  double lambda = 0.1;       ///< channel-length modulation, 1/V
  double gamma = 0.35;       ///< body effect, sqrt(V)
  double phi = 0.85;         ///< surface potential (2*phiF), V
  /// Overdrive smoothing voltage. In the deep tail I_D ~ exp(2 vgs/ss), so
  /// the model's subthreshold swing is ln(10)*ss/2 per decade — 0.078 V
  /// gives a physical ~90 mV/dec (see bench_ablations A1).
  double ss_v = 0.078;

  // -- temperature behaviour (Circuit::set_temperature drives temp_k) ------
  double temp_k = 300.0;        ///< device temperature
  double tnom_k = 300.0;        ///< temperature the parameters are quoted at
  /// |VT| temperature coefficient: both device types lose threshold
  /// magnitude as they heat (~ -1 mV/K).
  double vt_tc_v_per_k = -1.0e-3;
  /// Mobility power law: beta ~ (T/Tnom)^mobility_exp.
  double mobility_exp = -1.5;
  double tox_nm = 2.0;       ///< gate-oxide thickness (stress + caps), nm
  double cap_scale = 1.0;    ///< scales the internal node capacitances

  double beta() const { return kp * w_um / l_um; }
};

/// Builds MosParams from a technology node.
MosParams make_mos_params(const TechNode& tech, double w_um, double l_um,
                          bool is_pmos);

/// Time-zero random mismatch applied to this instance (variability, Sec. 2).
struct MosVariation {
  double dvt = 0.0;        ///< signed VT shift added to vt0, V
  double dbeta_rel = 0.0;  ///< relative beta error (e.g. +0.02 = +2%)
};

/// Time-dependent degradation state (aging, Sec. 3). All magnitudes are
/// defined so that zero means "fresh".
struct MosDegradation {
  double dvt = 0.0;            ///< |VT| increase, V (>= 0)
  double beta_factor = 1.0;    ///< multiplies beta (mobility degradation)
  double lambda_factor = 1.0;  ///< multiplies lambda (r_o degradation)
  double g_leak_gs = 0.0;      ///< gate-source leakage after oxide BD, S
  double g_leak_gd = 0.0;      ///< gate-drain leakage after oxide BD, S

  bool fresh() const {
    return dvt == 0.0 && beta_factor == 1.0 && lambda_factor == 1.0 &&
           g_leak_gs == 0.0 && g_leak_gd == 0.0;
  }
};

/// DC operating-point evaluation result (currents/conductances are in the
/// actual terminal frame, not the symmetric internal frame).
struct MosOperatingPoint {
  double id = 0.0;    ///< current into the drain terminal, A
  double gm = 0.0;    ///< d id / d vg
  double gds = 0.0;   ///< d id / d vd
  double gmb = 0.0;   ///< d id / d vb
  double vgs = 0.0;   ///< actual-frame vg - vs
  double vds = 0.0;   ///< actual-frame vd - vs
  double vbs = 0.0;
  double vov = 0.0;   ///< smoothed overdrive in the equivalent NMOS frame
  double vt_eff = 0.0;  ///< effective threshold in equivalent frame (>0)
  bool saturated = false;
  bool reversed = false;  ///< true when source/drain roles were swapped
};

class Mosfet final : public Device {
 public:
  Mosfet(std::string name, NodeId drain, NodeId gate, NodeId source,
         NodeId bulk, MosParams params);

  void stamp(StampArgs& args) override;
  void stamp_ac(AcStampArgs& args) override;
  void begin_analysis(AnalysisMode mode, const Vector& x) override;
  void accept_step(const Vector& x, double time, double dt) override;

  /// Full model evaluation at explicit terminal voltages.
  MosOperatingPoint evaluate(double vd, double vg, double vs, double vb) const;

  // Inputs for simd::mos_eval_core in the exact form evaluate() uses them;
  // the batched path snapshots these per sample so its lanes reproduce the
  // per-device evaluation (bit-identically under the scalar kernel).
  simd::MosDeviceConsts eval_consts() const;
  double eval_vt_base() const;  ///< frame threshold incl. mismatch/TC/aging
  double eval_beta() const;     ///< beta incl. mismatch/aging/temperature
  double eval_lambda() const;   ///< CLM incl. aging

  /// Model evaluation at a solution vector.
  MosOperatingPoint operating_point(const Vector& x) const;

  const MosParams& params() const { return params_; }
  MosParams& mutable_params() { return params_; }

  const MosVariation& variation() const { return variation_; }
  void set_variation(const MosVariation& v) { variation_ = v; }

  const MosDegradation& degradation() const { return degradation_; }
  void set_degradation(const MosDegradation& d);

  /// Effective signed threshold voltage including variation and aging.
  double vt_effective_signed() const;

  /// Enables stress accumulation during transient analysis.
  void enable_stress_recording(bool enabled = true);
  bool stress_recording() const { return record_stress_; }
  const MosStressAccumulator& stress() const { return stress_; }
  void reset_stress() { stress_.reset(); }

  /// Records one DC stress observation with the given time weight; used by
  /// the aging engine when the mission profile is a DC operating point.
  void record_stress_point(const Vector& x, double weight);

  NodeId drain() const { return d_; }
  NodeId gate() const { return g_; }
  NodeId source() const { return s_; }
  NodeId bulk() const { return b_; }

 private:
  struct CapState {
    double v_prev = 0.0;
    double i_prev = 0.0;
  };
  void stamp_cap(StampArgs& args, NodeId a, NodeId b, double c,
                 CapState& state) const;
  void accept_cap(const Vector& x, NodeId a, NodeId b, double c,
                  CapState& state, double dt) const;
  double cgs() const;
  double cgd() const;
  double cdb() const;

  NodeId d_, g_, s_, b_;
  MosParams params_;
  MosVariation variation_;
  MosDegradation degradation_;
  bool record_stress_ = false;
  MosStressAccumulator stress_;
  CapState cap_gs_, cap_gd_, cap_db_;
  Integrator integrator_ = Integrator::kBackwardEuler;
};

}  // namespace relsim::spice
