#include <algorithm>
#include <cmath>
#include <memory>

#include "linalg/lu.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "spice/analysis.h"
#include "testing/fault_injection.h"
#include "util/error.h"
#include "util/log.h"

namespace relsim::spice {

// ---------------------------------------------------------------------------
// StampArgs helpers (declared in device.h)

void StampArgs::add_jac(int row, int col, double value) {
  if (row < 0 || col < 0) return;
  if (pattern_ != nullptr) {
    pattern_->add(row, col);
    return;
  }
  if (sparse_ != nullptr) {
    if (!sparse_->add_at(static_cast<std::size_t>(row),
                         static_cast<std::size_t>(col), value)) {
      missed.emplace_back(row, col);
    }
    return;
  }
  (*dense_)(static_cast<std::size_t>(row), static_cast<std::size_t>(col)) +=
      value;
}

void StampArgs::add_rhs(int row, double value) {
  if (row < 0) return;
  rhs[static_cast<std::size_t>(row)] += value;
}

void StampArgs::add_conductance(NodeId a, NodeId b, double g) {
  const int ia = unknown_of(a);
  const int ib = unknown_of(b);
  add_jac(ia, ia, g);
  add_jac(ib, ib, g);
  add_jac(ia, ib, -g);
  add_jac(ib, ia, -g);
}

void StampArgs::add_current(NodeId a, NodeId b, double i) {
  add_rhs(unknown_of(a), -i);
  add_rhs(unknown_of(b), i);
}

// ---------------------------------------------------------------------------
// Sparse-structure management

namespace {

/// Captures the stamp pattern of every device — union of the DC and
/// transient stamps, so one structure serves all analyses — plus the full
/// structural diagonal (gmin stamp, pivot safety), and rebuilds the cached
/// CSR matrix from it. The capture pass runs each stamp at a zero iterate
/// with a dummy dt; devices only write positions in this mode.
void rebuild_sparse_structure(Circuit& circuit, SolverCache& cache,
                              std::size_t n) {
  const Vector zeros(n, 0.0);
  Vector scratch_rhs(n, 0.0);
  for (const AnalysisMode mode :
       {AnalysisMode::kDcOp, AnalysisMode::kTransient}) {
    StampArgs args(cache.pattern, scratch_rhs, zeros, mode,
                   Integrator::kBackwardEuler, 0.0, 1.0, 1.0);
    for (const auto& device : circuit.devices()) device->stamp(args);
  }
  cache.pattern.add_diagonal(n);
  cache.matrix = SparseMatrix(n, cache.pattern);
  cache.lu.reset();
  cache.pattern_valid = true;
  cache.pattern_n = n;
  ++cache.stats.pattern_builds;
  static obs::Counter& c_pattern =
      obs::metrics().counter("lu.pattern_builds");
  c_pattern.inc();
}

/// Stamps every device into the cached sparse matrix. When a stamp lands
/// outside the frozen structure (e.g. a post-breakdown gate-leak path that
/// did not exist at capture time), the pattern is grown by the missed
/// positions and the assembly is redone once against the new structure.
void assemble_sparse(Circuit& circuit, SolverCache& cache, Vector& rhs,
                     const Vector& x, AnalysisMode mode, Integrator integrator,
                     double time, double dt, double source_scale) {
  for (int attempt = 0; attempt < 2; ++attempt) {
    cache.matrix.zero_values();
    std::fill(rhs.begin(), rhs.end(), 0.0);
    StampArgs args(cache.matrix, rhs, x, mode, integrator, time, dt,
                   source_scale);
    for (const auto& device : circuit.devices()) device->stamp(args);
    if (args.missed.empty()) return;
    RELSIM_REQUIRE(attempt == 0,
                   "sparse assembly missed entries twice in a row");
    for (const auto& [r, c] : args.missed) cache.pattern.add(r, c);
    cache.matrix = SparseMatrix(cache.pattern_n, cache.pattern);
    cache.lu.reset();
    ++cache.stats.pattern_builds;
    static obs::Counter& c_pattern =
        obs::metrics().counter("lu.pattern_builds");
    c_pattern.inc();
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Newton core

namespace {

// Hot-path instruments, resolved once. SolverStats stays the per-circuit
// delta view (analysis results); these are the process-wide totals the
// manifest reports. Only counters/histograms — deterministic per sample.
struct NewtonMetrics {
  obs::Counter& solves = obs::metrics().counter("newton.solves");
  obs::Counter& iterations = obs::metrics().counter("newton.iterations");
  obs::Counter& nonconverged = obs::metrics().counter("newton.nonconverged");
  obs::Histogram& residual_norm =
      obs::metrics().histogram("newton.residual_norm");
  obs::Counter& lu_sparse_symbolic =
      obs::metrics().counter("lu.sparse_symbolic");
  obs::Counter& lu_sparse_refactor =
      obs::metrics().counter("lu.sparse_refactor");
  obs::Counter& lu_dense = obs::metrics().counter("lu.dense_factorizations");
  obs::Counter& lu_dense_fallbacks =
      obs::metrics().counter("lu.dense_fallbacks");
  obs::Counter& lu_pattern_builds =
      obs::metrics().counter("lu.pattern_builds");
  obs::Counter& nonfinite_updates =
      obs::metrics().counter("newton.nonfinite_updates");
  obs::Gauge& lu_fill_nnz = obs::metrics().gauge("lu.fill_nnz");
};

NewtonMetrics& newton_metrics() {
  static NewtonMetrics m;
  return m;
}

}  // namespace

NewtonResult newton_solve(Circuit& circuit, Vector& x, AnalysisMode mode,
                          Integrator integrator, double time, double dt,
                          double source_scale, double gmin,
                          const NewtonOptions& options) {
  NewtonMetrics& nm = newton_metrics();
  const obs::TraceSpan solve_span("newton.solve");
  nm.solves.inc();
  circuit.assemble();
  RELSIM_REQUIRE(circuit.unknown_count() > 0,
                 "cannot analyse an empty circuit");
  const std::size_t n = static_cast<std::size_t>(circuit.unknown_count());
  x.resize(n, 0.0);
  const std::size_t nodes = static_cast<std::size_t>(circuit.node_count());

  if (testing::fire(testing::FaultSite::kNewtonConverge)) {
    nm.nonconverged.inc();
    return {false, 0};
  }

  SolverCache& cache = circuit.solver_cache();
  const bool use_sparse =
      static_cast<int>(n) >= options.sparse_min_unknowns;
  if (use_sparse && (!cache.pattern_valid || cache.pattern_n != n)) {
    rebuild_sparse_structure(circuit, cache, n);
  }

  Matrix jac;  // dense path / fallback storage, allocated on first use
  Vector rhs(n);

  for (int iter = 1; iter <= options.max_iterations; ++iter) {
    Vector x_new;
    bool solved = false;

    if (use_sparse) {
      assemble_sparse(circuit, cache, rhs, x, mode, integrator, time, dt,
                      source_scale);
      for (std::size_t i = 0; i < nodes; ++i) {
        // Structurally guaranteed by add_diagonal() in the pattern capture;
        // a miss here means the cached structure is corrupt — fail loudly
        // rather than silently dropping the floating-node guard.
        RELSIM_REQUIRE(cache.matrix.add_at(i, i, gmin),
                       "gmin diagonal stamp outside the cached structure");
      }
      try {
        if (cache.lu == nullptr) {
          const obs::TraceSpan lu_span("lu.factor");
          cache.lu = std::make_unique<SparseLuFactorization>(cache.matrix);
          ++cache.stats.sparse_symbolic_factorizations;
          nm.lu_sparse_symbolic.inc();
          nm.lu_fill_nnz.set(static_cast<double>(cache.lu->fill_nnz()));
        } else {
          try {
            const obs::TraceSpan lu_span("lu.refactor");
            cache.lu->refactor(cache.matrix);
            ++cache.stats.sparse_numeric_refactorizations;
            nm.lu_sparse_refactor.inc();
          } catch (const SingularMatrixError&) {
            // The frozen pivot order went bad at the new operating point;
            // redo the symbolic analysis with a fresh pivot choice.
            const obs::TraceSpan lu_span("lu.factor");
            cache.lu.reset();
            cache.lu = std::make_unique<SparseLuFactorization>(cache.matrix);
            ++cache.stats.sparse_symbolic_factorizations;
            nm.lu_sparse_symbolic.inc();
            nm.lu_fill_nnz.set(static_cast<double>(cache.lu->fill_nnz()));
          }
        }
        cache.lu->solve_into(rhs, x_new);
        solved = true;
      } catch (const SingularMatrixError&) {
        // Pivot failure even with a fresh symbolic analysis: rescue the
        // iteration with the dense factorization (different pivoting may
        // still get through); the values are already assembled.
        cache.lu.reset();
        ++cache.stats.dense_fallbacks;
        nm.lu_dense_fallbacks.inc();
        jac = cache.matrix.to_dense();
      }
    } else {
      if (jac.rows() != n) jac = Matrix(n, n);
      jac.fill(0.0);
      std::fill(rhs.begin(), rhs.end(), 0.0);
      StampArgs args(jac, rhs, x, mode, integrator, time, dt, source_scale);
      for (const auto& device : circuit.devices()) device->stamp(args);
      // Diagonal gmin from every node to ground: guards floating nodes and
      // cut-off device stacks.
      for (std::size_t i = 0; i < nodes; ++i) jac(i, i) += gmin;
    }

    if (!solved) {
      try {
        const obs::TraceSpan lu_span("lu.dense_factor");
        LuFactorization lu(jac);
        lu.solve_into(rhs, x_new);
        ++cache.stats.dense_factorizations;
        nm.lu_dense.inc();
      } catch (const SingularMatrixError&) {
        cache.stats.newton_iterations += iter;
        nm.iterations.inc(iter);
        nm.nonconverged.inc();
        return {false, iter};
      }
    }

    // Quarantine poisoned updates: a NaN/Inf component would sail through
    // the tolerance check below (NaN compares false) and hand back a
    // "converged" garbage solution. Treat it as a failed solve instead.
    bool update_finite = true;
    for (const double v : x_new) {
      if (!std::isfinite(v)) {
        update_finite = false;
        break;
      }
    }
    if (!update_finite) {
      nm.nonfinite_updates.inc();
      cache.stats.newton_iterations += iter;
      nm.iterations.inc(iter);
      nm.nonconverged.inc();
      return {false, iter};
    }

    // Damp the voltage update and check convergence on the damped step.
    bool converged = true;
    double max_delta = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double delta = x_new[i] - x[i];
      const bool is_voltage = i < nodes;
      if (is_voltage && std::abs(delta) > options.max_step_v) {
        delta = std::copysign(options.max_step_v, delta);
        converged = false;
      }
      const double tol =
          (is_voltage ? options.v_abstol : options.i_abstol) +
          options.reltol * std::max(std::abs(x[i]), std::abs(x[i] + delta));
      if (std::abs(delta) > tol) converged = false;
      max_delta = std::max(max_delta, std::abs(delta));
      x[i] += delta;
    }
    // Convergence residual proxy: the max-abs damped update this
    // iteration. The distribution shows how hard the operating points of
    // a run fought back.
    nm.residual_norm.observe(max_delta);
    if (converged) {
      cache.stats.newton_iterations += iter;
      nm.iterations.inc(iter);
      return {true, iter};
    }
  }
  cache.stats.newton_iterations += options.max_iterations;
  nm.iterations.inc(options.max_iterations);
  nm.nonconverged.inc();
  return {false, options.max_iterations};
}

// ---------------------------------------------------------------------------
// DC operating point with gmin / source stepping fallbacks

std::vector<double> gmin_ladder(double gmin) {
  RELSIM_REQUIRE(gmin > 0.0, "gmin must be positive");
  std::vector<double> ladder;
  // Decade rungs strictly above gmin (the 1e-9 headroom absorbs the
  // rounding drift of repeated division), then gmin itself — the ladder
  // ends exactly at the requested value even off the decade grid.
  for (double g = 1e-2; g > gmin * (1.0 + 1e-9); g /= 10.0) {
    ladder.push_back(g);
  }
  ladder.push_back(gmin);
  return ladder;
}

namespace {

DcResult make_dc_result(Circuit& circuit, Vector x, int iterations,
                        const SolverStats& before, int rung) {
  DcResult r(std::move(x), iterations);
  r.set_solver_stats(circuit.solver_cache().stats - before);
  r.set_outcome(true);
  r.set_recovery_rung(rung);
  return r;
}

struct SequenceAttempt {
  bool ok = false;
  Vector x;
  int iterations = 0;
  int next_rung = 0;  ///< first rung index after this sequence
  int rung = 0;       ///< rung that converged (valid when ok)
};

/// One pass of the Newton -> gmin stepping -> source stepping sequence
/// with the given Newton controls. Rung numbering continues from
/// `rung_base` in exactly the order dc_recovery_ladder() reports.
SequenceAttempt try_dc_sequence(Circuit& circuit, const DcOptions& options,
                                const NewtonOptions& newton,
                                const Vector& initial_guess, int rung_base) {
  SequenceAttempt att;
  int rung = rung_base;

  Vector x = initial_guess;
  NewtonResult res =
      newton_solve(circuit, x, AnalysisMode::kDcOp, Integrator::kBackwardEuler,
                   0.0, 0.0, 1.0, newton.gmin, newton);
  if (res.converged) {
    return {true, std::move(x), res.iterations, rung + 1, rung};
  }
  ++rung;

  if (options.allow_gmin_stepping) {
    // Solve with a heavy diagonal conductance, then relax it rung by rung,
    // reusing each solution as the next starting point. The ladder ends
    // exactly at newton.gmin, so the last rung IS the final solve.
    const obs::TraceSpan ladder_span("dc.gmin_stepping");
    static obs::Counter& c_gmin_steps =
        obs::metrics().counter("newton.gmin_steps");
    Vector xg(static_cast<std::size_t>(circuit.unknown_count()), 0.0);
    bool ok = true;
    int total_iters = 0;
    for (const double g : gmin_ladder(newton.gmin)) {
      c_gmin_steps.inc();
      res = newton_solve(circuit, xg, AnalysisMode::kDcOp,
                         Integrator::kBackwardEuler, 0.0, 0.0, 1.0, g, newton);
      total_iters += res.iterations;
      if (!res.converged) {
        ok = false;
        break;
      }
    }
    if (ok) {
      return {true, std::move(xg), total_iters, rung + 1, rung};
    }
    ++rung;
    log_debug("gmin stepping failed, trying source stepping");
  }

  if (options.allow_source_stepping) {
    const obs::TraceSpan source_span("dc.source_stepping");
    static obs::Counter& c_source_steps =
        obs::metrics().counter("newton.source_steps");
    Vector xs(static_cast<std::size_t>(circuit.unknown_count()), 0.0);
    bool ok = true;
    int total_iters = 0;
    for (double scale = 0.05; scale < 1.0 + 1e-12; scale += 0.05) {
      c_source_steps.inc();
      res = newton_solve(circuit, xs, AnalysisMode::kDcOp,
                         Integrator::kBackwardEuler, 0.0, 0.0,
                         std::min(scale, 1.0), newton.gmin, newton);
      total_iters += res.iterations;
      if (!res.converged) {
        ok = false;
        break;
      }
    }
    if (ok) {
      return {true, std::move(xs), total_iters, rung + 1, rung};
    }
    ++rung;
  }

  att.next_rung = rung;
  return att;
}

/// Newton controls of escalation round `round` (0 = the caller's own).
NewtonOptions escalated_newton(const DcOptions& options, int round) {
  NewtonOptions newton = options.newton;
  if (round <= 0) return newton;
  const DcRecoveryOptions& rec = options.recovery;
  double reltol = newton.reltol;
  long long budget = newton.max_iterations;
  for (int r = 0; r < round; ++r) {
    reltol *= rec.reltol_relax;
    budget *= std::max(1, rec.iter_boost);
  }
  // The cap never tightens a reltol that is already looser than it.
  newton.reltol = std::min(reltol, std::max(rec.reltol_cap, newton.reltol));
  newton.max_iterations =
      static_cast<int>(std::min<long long>(budget, 1000000));
  return newton;
}

}  // namespace

std::vector<std::string> dc_recovery_ladder(const DcOptions& options) {
  std::vector<std::string> ladder;
  const auto append_sequence = [&](const std::string& suffix) {
    ladder.push_back("newton" + suffix);
    if (options.allow_gmin_stepping) {
      ladder.push_back("gmin-stepping" + suffix);
    }
    if (options.allow_source_stepping) {
      ladder.push_back("source-stepping" + suffix);
    }
  };
  append_sequence("");
  for (int round = 1; round <= options.recovery.max_rounds; ++round) {
    const NewtonOptions newton = escalated_newton(options, round);
    append_sequence("[relaxed r" + std::to_string(round) +
                    " reltol=" + std::to_string(newton.reltol) +
                    " iters=" + std::to_string(newton.max_iterations) + "]");
  }
  return ladder;
}

DcResult dc_operating_point(Circuit& circuit, const DcOptions& options,
                            const Vector& initial_guess) {
  obs::init_trace_from_env();
  circuit.assemble();
  const SolverStats before = circuit.solver_cache().stats;
  static obs::Counter& c_recovery_rounds =
      obs::metrics().counter("dc.recovery_rounds");

  int rung_base = 0;
  for (int round = 0; round <= std::max(0, options.recovery.max_rounds);
       ++round) {
    if (round > 0) {
      c_recovery_rounds.inc();
      obs::trace_instant("dc.recovery_round", "round",
                         static_cast<double>(round));
    }
    const NewtonOptions newton = escalated_newton(options, round);
    // Escalation rounds restart from zeros: the guess that fed the failed
    // round is part of why it failed.
    SequenceAttempt att =
        try_dc_sequence(circuit, options, newton,
                        round == 0 ? initial_guess : Vector{}, rung_base);
    if (att.ok) {
      return make_dc_result(circuit, std::move(att.x), att.iterations, before,
                            att.rung);
    }
    rung_base = att.next_rung;
  }

  std::string tried;
  for (const std::string& rung : dc_recovery_ladder(options)) {
    if (!tried.empty()) tried += ", ";
    tried += rung;
  }
  throw ConvergenceError(
      "DC operating point did not converge; recovery ladder exhausted (" +
      tried + ")");
}

std::vector<DcResult> dc_sweep(Circuit& circuit, VoltageSource& source,
                               const std::vector<double>& values,
                               const DcOptions& options) {
  std::vector<DcResult> results;
  results.reserve(values.size());
  Vector guess;
  for (double value : values) {
    source.set_dc(value);
    DcResult r = dc_operating_point(circuit, options, guess);
    guess = r.x();
    results.push_back(std::move(r));
  }
  return results;
}

}  // namespace relsim::spice
