#include <algorithm>
#include <cmath>

#include "linalg/lu.h"
#include "spice/analysis.h"
#include "util/error.h"
#include "util/log.h"

namespace relsim::spice {

// ---------------------------------------------------------------------------
// StampArgs helpers (declared in device.h)

void StampArgs::add_jac(int row, int col, double value) {
  if (row < 0 || col < 0) return;
  jac(static_cast<std::size_t>(row), static_cast<std::size_t>(col)) += value;
}

void StampArgs::add_rhs(int row, double value) {
  if (row < 0) return;
  rhs[static_cast<std::size_t>(row)] += value;
}

void StampArgs::add_conductance(NodeId a, NodeId b, double g) {
  const int ia = unknown_of(a);
  const int ib = unknown_of(b);
  add_jac(ia, ia, g);
  add_jac(ib, ib, g);
  add_jac(ia, ib, -g);
  add_jac(ib, ia, -g);
}

void StampArgs::add_current(NodeId a, NodeId b, double i) {
  add_rhs(unknown_of(a), -i);
  add_rhs(unknown_of(b), i);
}

// ---------------------------------------------------------------------------
// Newton core

NewtonResult newton_solve(Circuit& circuit, Vector& x, AnalysisMode mode,
                          Integrator integrator, double time, double dt,
                          double source_scale, double gmin,
                          const NewtonOptions& options) {
  circuit.assemble();
  RELSIM_REQUIRE(circuit.unknown_count() > 0,
                 "cannot analyse an empty circuit");
  const std::size_t n = static_cast<std::size_t>(circuit.unknown_count());
  x.resize(n, 0.0);
  const std::size_t nodes = static_cast<std::size_t>(circuit.node_count());

  Matrix jac(n, n);
  Vector rhs(n);

  for (int iter = 1; iter <= options.max_iterations; ++iter) {
    jac.fill(0.0);
    std::fill(rhs.begin(), rhs.end(), 0.0);

    StampArgs args{jac, rhs, x, mode, integrator, time, dt, source_scale};
    for (const auto& device : circuit.devices()) device->stamp(args);

    // Diagonal gmin from every node to ground: guards floating nodes and
    // cut-off device stacks.
    for (std::size_t i = 0; i < nodes; ++i) jac(i, i) += gmin;

    Vector x_new;
    try {
      LuFactorization lu(jac);
      lu.solve_into(rhs, x_new);
    } catch (const SingularMatrixError&) {
      return {false, iter};
    }

    // Damp the voltage update and check convergence on the damped step.
    bool converged = true;
    for (std::size_t i = 0; i < n; ++i) {
      double delta = x_new[i] - x[i];
      const bool is_voltage = i < nodes;
      if (is_voltage && std::abs(delta) > options.max_step_v) {
        delta = std::copysign(options.max_step_v, delta);
        converged = false;
      }
      const double tol =
          (is_voltage ? options.v_abstol : options.i_abstol) +
          options.reltol * std::max(std::abs(x[i]), std::abs(x[i] + delta));
      if (std::abs(delta) > tol) converged = false;
      x[i] += delta;
    }
    if (converged && iter > 1) return {true, iter};
  }
  return {false, options.max_iterations};
}

// ---------------------------------------------------------------------------
// DC operating point with gmin / source stepping fallbacks

DcResult dc_operating_point(Circuit& circuit, const DcOptions& options,
                            const Vector& initial_guess) {
  circuit.assemble();
  Vector x = initial_guess;
  NewtonResult res =
      newton_solve(circuit, x, AnalysisMode::kDcOp, Integrator::kBackwardEuler,
                   0.0, 0.0, 1.0, options.newton.gmin, options.newton);
  if (res.converged) return DcResult(std::move(x), res.iterations);

  if (options.allow_gmin_stepping) {
    // Solve with a heavy diagonal conductance, then relax it step by step,
    // reusing each solution as the next starting point.
    Vector xg(static_cast<std::size_t>(circuit.unknown_count()), 0.0);
    bool ok = true;
    int total_iters = 0;
    for (double g = 1e-2; g >= options.newton.gmin; g /= 10.0) {
      res = newton_solve(circuit, xg, AnalysisMode::kDcOp,
                         Integrator::kBackwardEuler, 0.0, 0.0, 1.0, g,
                         options.newton);
      total_iters += res.iterations;
      if (!res.converged) {
        ok = false;
        break;
      }
    }
    if (ok) {
      res = newton_solve(circuit, xg, AnalysisMode::kDcOp,
                         Integrator::kBackwardEuler, 0.0, 0.0, 1.0,
                         options.newton.gmin, options.newton);
      if (res.converged)
        return DcResult(std::move(xg), total_iters + res.iterations);
    }
    log_debug("gmin stepping failed, trying source stepping");
  }

  if (options.allow_source_stepping) {
    Vector xs(static_cast<std::size_t>(circuit.unknown_count()), 0.0);
    bool ok = true;
    int total_iters = 0;
    for (double scale = 0.05; scale < 1.0 + 1e-12; scale += 0.05) {
      res = newton_solve(circuit, xs, AnalysisMode::kDcOp,
                         Integrator::kBackwardEuler, 0.0, 0.0,
                         std::min(scale, 1.0), options.newton.gmin,
                         options.newton);
      total_iters += res.iterations;
      if (!res.converged) {
        ok = false;
        break;
      }
    }
    if (ok) return DcResult(std::move(xs), total_iters);
  }

  throw ConvergenceError(
      "DC operating point did not converge (Newton, gmin stepping and "
      "source stepping all failed)");
}

std::vector<DcResult> dc_sweep(Circuit& circuit, VoltageSource& source,
                               const std::vector<double>& values,
                               const DcOptions& options) {
  std::vector<DcResult> results;
  results.reserve(values.size());
  Vector guess;
  for (double value : values) {
    source.set_dc(value);
    DcResult r = dc_operating_point(circuit, options, guess);
    guess = r.x();
    results.push_back(std::move(r));
  }
  return results;
}

}  // namespace relsim::spice
