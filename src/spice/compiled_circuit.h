// Compiled circuit: batched cross-sample DC evaluation.
//
// Monte-Carlo yield runs solve the SAME topology thousands of times with
// only device parameter values changing (Pelgrom mismatch, aging state).
// The classic per-sample path rebuilds everything from scratch: construct
// the circuit, capture the stamp pattern, run the sparse LU's symbolic
// analysis, then Newton-iterate. Pattern and symbolic analysis depend on
// topology alone, so across samples that work is pure waste.
//
// CompiledCircuit does the topology-dependent work ONCE:
//   - a nominal DC solve on the master circuit captures the stamp pattern
//     and the sparse LU's symbolic structure (and yields a warm-start
//     point every sample's Newton begins from);
//   - every MOSFET's jacobian/rhs positions are resolved to value-array
//     slots, so a sample is applied by value-only restamping — no
//     structure search per write;
//   - per-device model inputs (vt_base/beta/lambda with the sampled
//     mismatch folded in) live in flat SoA tables, feeding the batched
//     SIMD kernels in src/simd/ which evaluate K samples in lockstep.
//
// Workers hold a private Workspace (own Circuit copy, matrix values, rhs,
// per-lane iterates) and share the compiled structure read-only, so a
// sample costs one numeric refactorization instead of a full rebuild.
// Lane results are element-wise (batch-width independent), which keeps
// batched MC results independent of how samples were grouped.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "linalg/sparse_lu.h"
#include "linalg/sparse_matrix.h"
#include "simd/mos_kernel.h"
#include "spice/analysis.h"
#include "spice/circuit.h"

namespace relsim::spice {

class CompiledCircuit {
 public:
  struct Options {
    NewtonOptions newton;  ///< sparse_min_unknowns is ignored: always sparse
    bool allow_gmin_stepping = true;    ///< per-lane rescue ladder
    bool allow_source_stepping = true;  ///< per-lane rescue ladder
    std::size_t max_lanes = 64;         ///< samples per lockstep solve
    /// Device-kernel dispatch; defaults to the RELSIM_SIMD-resolved level.
    simd::SimdLevel simd_level = simd::active_simd_level();
  };

  /// Compiles `circuit` (takes ownership): runs the nominal DC solve that
  /// captures the pattern + symbolic LU, and resolves every MOSFET stamp
  /// position to a value slot. Throws ConvergenceError if even the nominal
  /// circuit has no DC solution.
  explicit CompiledCircuit(std::unique_ptr<Circuit> circuit);
  CompiledCircuit(std::unique_ptr<Circuit> circuit, Options options);

  Circuit& circuit() { return *circuit_; }
  const Circuit& circuit() const { return *circuit_; }
  const Options& options() const { return options_; }

  std::size_t unknown_count() const { return n_; }
  std::size_t mosfet_count() const { return mos_.size(); }

  /// Nominal (zero-mismatch) solution; every lane warm-starts from it.
  const Vector& nominal_solution() const { return x_nom_; }

  /// Stats spent compiling — for a batched run, pattern_builds and
  /// sparse_symbolic_factorizations should come from here alone.
  const SolverStats& compile_stats() const { return compile_stats_; }

  simd::SimdLevel simd_level() const { return simd_level_; }
  void set_simd_level(simd::SimdLevel level) { simd_level_ = level; }

  /// Per-MOSFET stamp slots and model constants, resolved at compile time.
  struct MosSlots {
    NodeId d = 0, g = 0, s = 0, b = 0;
    simd::MosDeviceConsts consts;
    /// values() slots of the 8 channel jacobian entries, in stamp order:
    /// (rd,cg) (rd,cd) (rd,cs) (rd,cb) (rs,cg) (rs,cd) (rs,cs) (rs,cb).
    /// -1 where the row or column is ground.
    int jac[8] = {-1, -1, -1, -1, -1, -1, -1, -1};
    /// Gate-leak conductance quadruples (g,s) and (g,d): (ia,ia) (ib,ib)
    /// (ia,ib) (ib,ia). Resolved only when the master device had the leak.
    int leak_gs[4] = {-1, -1, -1, -1};
    int leak_gd[4] = {-1, -1, -1, -1};
    bool has_leak_gs = false;
    bool has_leak_gd = false;
  };

  /// Per-worker private state: an owned Circuit copy (for the thread-safe
  /// non-MOSFET stamps and spec evaluation), matrix values + LU sharing the
  /// master's symbolic structure, and per-lane SoA parameter/result tables.
  class Workspace {
   public:
    Workspace(const CompiledCircuit& compiled, std::unique_ptr<Circuit> own);

    std::size_t max_lanes() const { return compiled_.options().max_lanes; }
    Circuit& circuit() { return *circuit_; }
    const Circuit& circuit() const { return *circuit_; }

    /// Applies one sample's mismatch to (lane, mosfet): updates the
    /// workspace device and snapshots its model inputs into the SoA
    /// tables in the exact arithmetic Mosfet::evaluate uses.
    void set_lane_variation(std::size_t lane, std::size_t mos_index,
                            const MosVariation& v);

    /// Solves the DC operating point of lanes [0, lanes) in lockstep,
    /// warm-started from the nominal solution. Lanes that fall out of the
    /// shared Newton are rescued individually (fresh start, then gmin and
    /// source stepping as enabled). Throws ConvergenceError if any lane
    /// still fails.
    void solve_dc(std::size_t lanes);

    const Vector& lane_solution(std::size_t lane) const { return x_[lane]; }

    /// Cumulative solver work done by this workspace (numeric refactors,
    /// newton iterations, rescue fallbacks). No pattern builds: those
    /// happened at compile time.
    const SolverStats& stats() const { return stats_; }

   private:
    std::size_t idx(std::size_t mos_index, std::size_t lane) const {
      return mos_index * max_lanes() + lane;
    }
    void eval_mosfets(std::size_t lanes);
    void build_affine_base(double gmin, double source_scale);
    void assemble_lane(std::size_t lane, double gmin, double source_scale);
    bool solve_assembled(Vector& x_new);
    /// One Newton run over the active lanes; sets ok[] per converged lane.
    /// With allow_chord, iterations after a lane's refactorization reuse
    /// that lane's LU (chord/frozen-jacobian steps) until a refresh.
    void newton_lanes(std::size_t lanes, std::vector<std::uint8_t>& active,
                      std::vector<std::uint8_t>& ok, double gmin,
                      double source_scale, bool allow_chord);
    void rescue_lane(std::size_t lanes, std::size_t lane,
                     std::vector<std::uint8_t>& active,
                     std::vector<std::uint8_t>& ok);

    const CompiledCircuit& compiled_;
    std::unique_ptr<Circuit> circuit_;
    std::vector<Device*> other_devices_;  ///< non-MOSFET, stamped generically
    /// True when every non-MOSFET device's DC stamp is independent of the
    /// iterate (R/L/C/sources): their stamp + the gmin diagonal is then
    /// built once per Newton run and copied per lane instead of restamped.
    bool affine_others_ = false;
    std::vector<double> base_values_;
    Vector base_rhs_;
    /// Chord-Newton state. A full iteration factorizes the lane's jacobian
    /// and snapshots the LU values plus the gm/gds/gmb they came from; the
    /// next few iterations reuse them (rhs-only assembly + triangular
    /// solves, no refactorization). The frozen-jacobian fixed point is the
    /// exact circuit solution, so only the convergence RATE changes —
    /// accepted solutions still meet the same tolerances.
    struct LaneChord {
      SparseLuFactorization::NumericValues lu;
      bool valid = false;
      int steps = 0;  ///< chord steps since the last full refactorization
      std::uint64_t generation = 0;  ///< lu_generation_ at snapshot time
    };
    std::vector<LaneChord> chord_;
    std::vector<double> fgm_, fgds_, fgmb_;  ///< frozen jacobian SoA
    bool last_solve_sparse_ = false;  ///< solve_assembled took the LU path
    /// Bumped whenever lu_ is rebuilt with a fresh symbolic structure; a
    /// chord snapshot from an older generation must never be loaded (its
    /// values are laid out for a different fill pattern).
    std::uint64_t lu_generation_ = 0;
    std::vector<Mosfet*> mosfets_;
    SparseMatrix matrix_;
    std::unique_ptr<SparseLuFactorization> lu_;  ///< master symbolic, copied
    Vector rhs_;
    std::vector<Vector> x_;  ///< per-lane Newton iterate
    // Flat [mosfet * max_lanes] SoA tables feeding the SIMD kernels.
    std::vector<double> vd_, vg_, vs_, vb_;
    std::vector<double> vt_base_, beta_, lambda_;
    std::vector<double> id_, gm_, gds_, gmb_;
    SolverStats stats_;
  };

  /// Builds a worker-private workspace around `own`, a circuit produced by
  /// the same factory as the master (verified: same unknown count, same
  /// MOSFET nodes/leak state).
  std::unique_ptr<Workspace> make_workspace(std::unique_ptr<Circuit> own) const;

 private:
  Options options_;
  std::unique_ptr<Circuit> circuit_;
  std::size_t n_ = 0;      ///< unknowns
  std::size_t nodes_ = 0;  ///< voltage unknowns (damping applies to these)
  Vector x_nom_;
  std::unique_ptr<SparseLuFactorization> lu_master_;
  SparseMatrix matrix_master_;  ///< structure template for workspaces
  SolverStats compile_stats_;
  std::vector<MosSlots> mos_;
  std::vector<int> diag_; ///< values() slot of (i,i) per node row, for gmin
  simd::SimdLevel simd_level_;
};

}  // namespace relsim::spice
