// DC and transient analyses.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "spice/circuit.h"

namespace relsim::spice {

/// Common outcome block shared by EVERY analysis result (DC, AC and
/// transient): the same three accessors under the same names, so generic
/// harnesses (Monte-Carlo telemetry, benches, logging) can consume any
/// analysis uniformly instead of special-casing each result type.
///
/// Analyses that cannot produce a usable solution throw (ConvergenceError
/// et al.), so a RETURNED result normally has converged() == true with an
/// empty abort_reason(); the fields exist so partial-result paths added
/// later report failure the same way everywhere.
class AnalysisResultBase {
 public:
  /// Linear-solver counters spent producing this result (factorizations,
  /// symbolic reuses, fallbacks, Newton iterations, AC complex solves).
  const SolverStats& solver_stats() const { return solver_stats_; }
  bool converged() const { return converged_; }
  /// Empty when converged; otherwise why the analysis gave up.
  const std::string& abort_reason() const { return abort_reason_; }

  void set_solver_stats(const SolverStats& stats) { solver_stats_ = stats; }
  void set_outcome(bool converged, std::string abort_reason = {}) {
    converged_ = converged;
    abort_reason_ = std::move(abort_reason);
  }

 protected:
  SolverStats solver_stats_;
  bool converged_ = false;
  std::string abort_reason_;
};

/// Newton-iteration controls shared by DC and transient analyses.
struct NewtonOptions {
  int max_iterations = 200;
  double v_abstol = 1e-6;   ///< node-voltage absolute tolerance, V
  double i_abstol = 1e-9;   ///< branch-current absolute tolerance, A
  double reltol = 1e-6;
  double max_step_v = 1.0;  ///< per-iteration voltage-update damping limit
  double gmin = 1e-12;      ///< conductance added from every node to ground
  /// Unknown count at and above which the sparse LU path (cached symbolic
  /// structure, numeric refactorization) is used; below it the dense LU
  /// wins on bookkeeping overhead. Set to 1 to force sparse, a huge value
  /// to force dense (equivalence tests do both).
  int sparse_min_unknowns = 32;
};

/// Escalation rounds appended to the standard Newton -> gmin stepping ->
/// source stepping sequence when everything in it fails. Round r (1-based)
/// replays the whole sequence with reltol multiplied by reltol_relax^r
/// (capped at reltol_cap) and the iteration budget multiplied by
/// iter_boost^r. The rung order is FIXED — dc_recovery_ladder() names it —
/// so a recovered operating point is reproducible for any thread count.
struct DcRecoveryOptions {
  int max_rounds = 0;        ///< 0 = disabled (exact legacy behaviour)
  double reltol_relax = 10.0;
  int iter_boost = 4;
  double reltol_cap = 1e-3;  ///< never relax reltol beyond this
};

struct DcOptions {
  NewtonOptions newton;
  bool allow_gmin_stepping = true;
  bool allow_source_stepping = true;
  DcRecoveryOptions recovery;
};

/// Result of a converged DC operating point.
class DcResult : public AnalysisResultBase {
 public:
  DcResult(Vector x, int iterations) : x_(std::move(x)), iters_(iterations) {}

  const Vector& x() const { return x_; }
  int iterations() const { return iters_; }

  /// Index into dc_recovery_ladder(options) of the rung that produced
  /// this solution: 0 = plain Newton, later entries are the fallbacks in
  /// attempt order (disabled techniques are omitted from the ladder).
  int recovery_rung() const { return recovery_rung_; }
  void set_recovery_rung(int rung) { recovery_rung_ = rung; }

  double v(NodeId node) const {
    return node == kGround ? 0.0 : x_[static_cast<std::size_t>(node - 1)];
  }

 private:
  Vector x_;
  int iters_;
  int recovery_rung_ = 0;
};

/// Solves the DC operating point. Tries plain Newton from `initial_guess`
/// (zeros when empty), then gmin stepping, then source stepping, then —
/// when options.recovery.max_rounds > 0 — the relaxed-tolerance escalation
/// rounds of the recovery ladder. Throws ConvergenceError naming the rungs
/// tried when everything fails.
DcResult dc_operating_point(Circuit& circuit, const DcOptions& options = {},
                            const Vector& initial_guess = {});

/// The exact rung sequence dc_operating_point attempts for `options`, in
/// order ("newton", "gmin-stepping", "source-stepping", then one entry per
/// relaxed round and technique). DcResult::recovery_rung() indexes into
/// this list; disabled techniques are omitted.
std::vector<std::string> dc_recovery_ladder(const DcOptions& options);

/// Sweeps the DC value of `source` over `values`, reusing each solution as
/// the next starting point. Returns one DcResult per value.
std::vector<DcResult> dc_sweep(Circuit& circuit, VoltageSource& source,
                               const std::vector<double>& values,
                               const DcOptions& options = {});

/// Low-level Newton solve used by both analyses (exposed for tests).
struct NewtonResult {
  bool converged = false;
  int iterations = 0;
};
NewtonResult newton_solve(Circuit& circuit, Vector& x, AnalysisMode mode,
                          Integrator integrator, double time, double dt,
                          double source_scale, double gmin,
                          const NewtonOptions& options);

/// The gmin-stepping relaxation ladder: decade steps from 1e-2 down,
/// always terminating EXACTLY at `gmin` (also for non-decade values).
/// Exposed for tests.
std::vector<double> gmin_ladder(double gmin);

// ---------------------------------------------------------------------------
// Transient

struct TransientOptions {
  double dt = 1e-9;      ///< nominal step
  double t_stop = 1e-6;  ///< end time
  Integrator integrator = Integrator::kTrapezoidal;
  NewtonOptions newton;
  /// When true, skip the initial DC operating point and start from the
  /// voltages in `initial_conditions` (unspecified nodes start at 0 V) —
  /// SPICE "UIC". Needed to start oscillators.
  bool use_initial_conditions = false;
  std::map<NodeId, double> initial_conditions;
  /// Maximum number of successive step halvings on non-convergence; the
  /// analysis throws ConvergenceError once they are exhausted.
  int max_step_halvings = 8;
};

/// Recorded waveforms of a transient run.
class TransientResult : public AnalysisResultBase {
 public:
  const std::vector<double>& time() const { return time_; }
  /// Waveform of a probed node (throws if the node was not probed).
  const std::vector<double>& node(NodeId node) const;
  /// Waveform of a probed source branch current.
  const std::vector<double>& source_current(const std::string& name) const;

  std::size_t step_count() const { return time_.size(); }

 private:
  friend TransientResult transient_analysis(
      Circuit&, const TransientOptions&, const std::vector<NodeId>&,
      const std::vector<std::string>&);

  std::vector<double> time_;
  std::map<NodeId, std::vector<double>> nodes_;
  std::map<std::string, std::vector<double>> currents_;
};

/// Runs a transient analysis, probing the listed nodes and the branch
/// currents of the listed voltage sources. Devices accumulate stress when
/// recording is enabled on the circuit.
TransientResult transient_analysis(
    Circuit& circuit, const TransientOptions& options,
    const std::vector<NodeId>& probe_nodes = {},
    const std::vector<std::string>& probe_source_currents = {});

}  // namespace relsim::spice
