// Electromigration — Sec. 3.4, Eq. 4 of the paper (Black's law [6]):
//
//   MTTF = A * J^-n * exp(E_a / kT)                                   (4)
//
// EM lives in the interconnect, not the devices: wires are resistors with
// geometry (spice::WireGeometry), and the model consumes the current
// statistics recorded through them. Implemented layout effects:
//  - Blech length [7]: wires with j*L below a critical product are immune;
//  - bamboo effect [25]: wires narrower than the grain size live longer;
//  - via/reservoir effect [30]: a lifetime multiplier for well-designed
//    vias, and a penalty for poorly designed ones;
//  - lognormal lifetime spread around the Black MTTF.
#pragma once

#include "aging/model.h"
#include "rng/rng.h"
#include "spice/elements.h"
#include "tech/tech.h"

namespace relsim::aging {

/// Everything the EM model needs to know about one wire.
struct WireStress {
  double width_um = 1.0;
  double length_um = 10.0;
  double thickness_um = 0.35;
  double dc_current_a = 0.0;   ///< signed DC (average) current
  double rms_current_a = 0.0;
  double temp_k = 300.0;
  bool good_via_reservoir = true;  ///< reservoir-effect via layout [30]

  static WireStress from_resistor(const spice::Resistor& wire, double temp_k);
};

class EmModel {
 public:
  explicit EmModel(const EmTechParams& tech);

  const EmTechParams& tech() const { return tech_; }

  /// |DC| current density through the wire cross-section, A/cm^2 (the EM
  /// driver is the net ion wind, i.e. the DC component).
  double current_density_a_cm2(const WireStress& wire) const;

  /// Blech immunity [7]: j * L below the critical product means the
  /// back-stress stops the ion flux entirely.
  bool blech_immune(const WireStress& wire) const;

  /// Bamboo lifetime multiplier [25]: 1 for wide wires, growing as the
  /// width drops below the grain size (grain boundaries leave the current
  /// path).
  double bamboo_factor(double width_um) const;

  /// Reservoir-effect multiplier [30].
  double reservoir_factor(bool good_via) const;

  /// Eq. 4 with the layout corrections; returns +inf for Blech-immune or
  /// currentless wires. Seconds.
  double mttf_s(const WireStress& wire) const;

  /// Samples an actual lifetime (lognormal around MTTF). Seconds.
  double sample_lifetime_s(const WireStress& wire, Xoshiro256& rng) const;

  /// Minimum wire width (um) for a target lifetime at a given current —
  /// the EM-aware sizing rule a layout flow applies (Sec. 3.4: "wires must
  /// be widened to reduce the degradation").
  double min_width_for_lifetime_um(double current_a, double length_um,
                                   double temp_k, double target_life_s) const;

 private:
  EmTechParams tech_;
};

}  // namespace relsim::aging
