#include "aging/nbti.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"
#include "util/units.h"

namespace relsim::aging {

namespace {
/// Accumulated-shift state: power-law mechanisms advance through equivalent
/// stress time so that changing stress between epochs composes correctly.
class PowerLawState : public ModelState {
 public:
  double dvt = 0.0;
};
}  // namespace

NbtiModel::NbtiModel(const NbtiParams& params) : params_(params) {
  RELSIM_REQUIRE(params.a_prefactor_v > 0.0, "NBTI prefactor must be > 0");
  RELSIM_REQUIRE(params.n > 0.0 && params.n < 1.0,
                 "NBTI exponent must be in (0,1)");
  RELSIM_REQUIRE(params.recoverable_frac >= 0.0 &&
                     params.recoverable_frac <= 1.0,
                 "recoverable fraction must be in [0,1]");
  RELSIM_REQUIRE(params.relax_t0_s > 0.0 && params.relax_decades > 0.0,
                 "relaxation parameters must be positive");
}

std::unique_ptr<ModelState> NbtiModel::init_state(const DeviceStress&,
                                                  Xoshiro256&) const {
  return std::make_unique<PowerLawState>();
}

double NbtiModel::delta_vt_dc(double eox_v_per_nm, double temp_k,
                              double t_s) const {
  RELSIM_REQUIRE(t_s >= 0.0, "stress time must be non-negative");
  if (t_s == 0.0) return 0.0;
  return params_.a_prefactor_v *
         std::exp(eox_v_per_nm / params_.e0_v_per_nm) *
         std::exp(-params_.ea_ev / (units::kBoltzmannEv * temp_k)) *
         std::pow(t_s, params_.n);
}

double NbtiModel::duty_factor(double duty) const {
  RELSIM_REQUIRE(duty >= 0.0 && duty <= 1.0, "duty must be in [0,1]");
  if (duty == 0.0) return 0.0;
  // Equivalent-time scaling of the power law (R-D: stress accumulates only
  // during the on-phase) times suppression of the recoverable component
  // (partial relaxation every off-phase).
  const double rd = std::pow(duty, params_.n);
  const double suppression =
      1.0 - params_.recoverable_frac * 0.5 * (1.0 - duty);
  return rd * suppression;
}

double NbtiModel::stress_prefactor(const DeviceStress& stress) const {
  const double type_factor =
      stress.is_pmos ? 1.0 : params_.pbti_nmos_factor;
  return type_factor * duty_factor(stress.duty) *
         params_.a_prefactor_v *
         std::exp(stress.eox_v_per_nm() / params_.e0_v_per_nm) *
         std::exp(-params_.ea_ev / (units::kBoltzmannEv * stress.temp_k));
}

double NbtiModel::delta_vt(const DeviceStress& stress, double t_s) const {
  if (t_s <= 0.0) return 0.0;
  return stress_prefactor(stress) * std::pow(t_s, params_.n);
}

double NbtiModel::relaxed_delta_vt(double dvt_end, double t_relax_s) const {
  RELSIM_REQUIRE(dvt_end >= 0.0 && t_relax_s >= 0.0,
                 "relaxation arguments must be non-negative");
  const double permanent = (1.0 - params_.recoverable_frac) * dvt_end;
  const double recoverable = params_.recoverable_frac * dvt_end;
  const double decades = std::log10(1.0 + t_relax_s / params_.relax_t0_s);
  const double remaining =
      std::max(0.0, 1.0 - decades / params_.relax_decades);
  return permanent + recoverable * remaining;
}

double NbtiModel::apparent_delta_vt(const DeviceStress& stress,
                                    double t_stress_s,
                                    double t_measure_delay_s) const {
  return relaxed_delta_vt(delta_vt(stress, t_stress_s), t_measure_delay_s);
}

ParameterDrift NbtiModel::drift_from_dvt(double dvt) const {
  ParameterDrift d;
  d.dvt = dvt;
  d.beta_factor =
      std::max(0.5, 1.0 - params_.mobility_per_volt * dvt);
  return d;
}

ParameterDrift NbtiModel::advance(ModelState& state,
                                  const DeviceStress& stress,
                                  double dt_s) const {
  RELSIM_REQUIRE(dt_s >= 0.0, "epoch duration must be non-negative");
  auto& s = static_cast<PowerLawState&>(state);
  const double k = stress_prefactor(stress);
  if (k > 0.0 && dt_s > 0.0) {
    // Equivalent stress time under the *current* condition that would have
    // produced the accumulated shift, then advance by dt. When the current
    // stress is far weaker than what produced the accumulated shift, the
    // equivalent time overflows — physically the epoch adds nothing, so
    // keep the shift unchanged instead of degenerating to inf.
    const double t_eq = std::pow(s.dvt / k, 1.0 / params_.n);
    const double aged = k * std::pow(t_eq + dt_s, params_.n);
    if (std::isfinite(aged) && aged > s.dvt) s.dvt = aged;
  }
  return drift_from_dvt(s.dvt);
}

}  // namespace relsim::aging
