// Negative Bias Temperature Instability — Sec. 3.3, Eq. 3 of the paper.
//
//   dVT = A * exp(E_ox/E_0) * exp(-E_a/kT) * t^n                      (3)
//
// mainly affecting pMOS under negative gate bias at elevated temperature
// [37],[40], with:
//  - a power-law time dependence (exponent n ~ 0.15-0.25),
//  - log(t)-like relaxation after the stress is removed, spanning
//    microseconds to days [29],[34],
//  - an explicit split into a permanent (lock-in) and a recoverable
//    component [15],[29],[34], and
//  - reduced degradation under AC stress, depending on the duty factor [15].
//
// Mobility degradation is coupled to the threshold shift ([40],[16]):
// beta_factor = 1 - m * dVT (clamped).
//
// Default constants are calibrated so that a pMOS at |Vgs| = nominal VDD,
// T = 398 K in a ~2 nm oxide technology accumulates ~40-60 mV in 10 years of
// DC stress — the regime the paper's discussion targets.
#pragma once

#include "aging/model.h"

namespace relsim::aging {

struct NbtiParams {
  double a_prefactor_v = 0.0022;  ///< A in Eq. 3, volts at t = 1 s
  double e0_v_per_nm = 0.25;      ///< oxide-field acceleration E_0
  double ea_ev = 0.08;            ///< thermal activation E_a
  double n = 0.16;                ///< power-law exponent
  double recoverable_frac = 0.5;  ///< share of dVT that can relax
  double relax_t0_s = 1e-6;       ///< onset of the log(t) relaxation
  double relax_decades = 12.0;    ///< decades to fully relax the fast part
  double pbti_nmos_factor = 0.05; ///< PBTI strength on nMOS relative to pMOS
  double mobility_per_volt = 0.4; ///< beta_factor = 1 - m*dVT
};

class NbtiModel final : public AgingModel {
 public:
  NbtiModel() : NbtiModel(NbtiParams{}) {}
  explicit NbtiModel(const NbtiParams& params);

  std::string name() const override { return "NBTI"; }
  std::unique_ptr<ModelState> init_state(const DeviceStress& stress,
                                         Xoshiro256& rng) const override;
  ParameterDrift advance(ModelState& state, const DeviceStress& stress,
                         double dt_s) const override;

  const NbtiParams& params() const { return params_; }

  // -- closed forms (benches/tests) ----------------------------------------

  /// Eq. 3 for DC stress: dVT(t) at oxide field `eox` (V/nm), temperature
  /// `temp_k`, after `t_s` seconds.
  double delta_vt_dc(double eox_v_per_nm, double temp_k, double t_s) const;

  /// AC duty reduction factor in [0,1]: the ratio dVT_AC/dVT_DC for duty
  /// cycle `duty`. Combines the reaction-diffusion equivalent-time scaling
  /// (duty^n) with suppression of the recoverable component during the
  /// off-phase. s(0)=0, s(1)=1, monotone.
  double duty_factor(double duty) const;

  /// Full model: dVT for a stress condition after `t_s` seconds (includes
  /// duty and device-type factors).
  double delta_vt(const DeviceStress& stress, double t_s) const;

  /// Relaxation: remaining dVT a time `t_relax_s` after the stress was
  /// removed, given the shift `dvt_end` at the end of stress. The permanent
  /// part never relaxes; the recoverable part decays ~log(t) [29],[34].
  double relaxed_delta_vt(double dvt_end, double t_relax_s) const;

  /// The shift a measure-stress-measure experiment would REPORT when the
  /// readout happens `t_measure_delay_s` after removing the stress — the
  /// relaxation "greatly complicates the evaluation of NBTI, its modeling,
  /// and extrapolating its impact" (Sec. 3.3): slow measurements
  /// underestimate the true degradation [34].
  double apparent_delta_vt(const DeviceStress& stress, double t_stress_s,
                           double t_measure_delay_s) const;

  /// Maps a threshold shift to the full parameter drift (adds the coupled
  /// mobility degradation).
  ParameterDrift drift_from_dvt(double dvt) const;

  /// The prefactor K(stress) in dVT = K * t^n for this stress condition.
  double stress_prefactor(const DeviceStress& stress) const;

 private:
  NbtiParams params_;
};

}  // namespace relsim::aging
