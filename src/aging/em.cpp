#include "aging/em.h"

#include <cmath>
#include <limits>

#include "rng/distributions.h"
#include "util/error.h"
#include "util/units.h"

namespace relsim::aging {

WireStress WireStress::from_resistor(const spice::Resistor& wire,
                                     double temp_k) {
  RELSIM_REQUIRE(wire.wire_geometry().has_value(),
                 "resistor '" + wire.name() + "' has no wire geometry");
  RELSIM_REQUIRE(!wire.stress().empty(),
                 "wire '" + wire.name() + "' has no recorded current");
  const auto& g = *wire.wire_geometry();
  WireStress s;
  s.width_um = g.width_um;
  s.length_um = g.length_um;
  s.thickness_um = g.thickness_um;
  s.dc_current_a = wire.stress().mean_current();
  s.rms_current_a = wire.stress().rms_current();
  s.temp_k = temp_k;
  return s;
}

EmModel::EmModel(const EmTechParams& tech) : tech_(tech) {
  RELSIM_REQUIRE(tech.a_prefactor > 0.0, "EM prefactor must be positive");
  RELSIM_REQUIRE(tech.current_exponent > 0.0, "EM exponent must be positive");
  RELSIM_REQUIRE(tech.grain_size_um > 0.0, "grain size must be positive");
}

double EmModel::current_density_a_cm2(const WireStress& wire) const {
  RELSIM_REQUIRE(wire.width_um > 0.0 && wire.thickness_um > 0.0,
                 "wire cross-section must be positive");
  const double area_cm2 = wire.width_um * 1e-4 * wire.thickness_um * 1e-4;
  return std::abs(wire.dc_current_a) / area_cm2;
}

bool EmModel::blech_immune(const WireStress& wire) const {
  const double j = current_density_a_cm2(wire);
  const double product = j * wire.length_um * 1e-4;  // A/cm
  return product < tech_.blech_product_a_per_cm;
}

double EmModel::bamboo_factor(double width_um) const {
  RELSIM_REQUIRE(width_um > 0.0, "width must be positive");
  if (width_um >= tech_.grain_size_um) return 1.0;
  // Below the grain size the wire becomes a chain of single grains with no
  // longitudinal boundary diffusion path; lifetime improves steeply.
  return std::pow(tech_.grain_size_um / width_um, 2.0);
}

double EmModel::reservoir_factor(bool good_via) const {
  return good_via ? 1.0 : 0.5;
}

double EmModel::mttf_s(const WireStress& wire) const {
  const double j = current_density_a_cm2(wire);
  if (j <= 0.0 || blech_immune(wire)) {
    return std::numeric_limits<double>::infinity();
  }
  const double black =
      tech_.a_prefactor * std::pow(j, -tech_.current_exponent) *
      std::exp(tech_.activation_ev / (units::kBoltzmannEv * wire.temp_k));
  return black * bamboo_factor(wire.width_um) *
         reservoir_factor(wire.good_via_reservoir);
}

double EmModel::sample_lifetime_s(const WireStress& wire,
                                  Xoshiro256& rng) const {
  const double mttf = mttf_s(wire);
  if (!std::isfinite(mttf)) return mttf;
  // Lognormal spread with the median at the Black MTTF.
  return LogNormalDistribution::from_median(mttf, tech_.lifetime_sigma)(rng);
}

double EmModel::min_width_for_lifetime_um(double current_a, double length_um,
                                          double temp_k,
                                          double target_life_s) const {
  RELSIM_REQUIRE(current_a >= 0.0, "current must be non-negative");
  RELSIM_REQUIRE(target_life_s > 0.0, "target lifetime must be positive");
  if (current_a == 0.0) return 0.0;
  // Bisect on width: MTTF is monotone non-decreasing in width (J falls,
  // though the bamboo factor also falls — the net effect of widening past
  // the grain size is still monotone because J dominates with n = 2).
  auto life = [&](double w) {
    WireStress s;
    s.width_um = w;
    s.length_um = length_um;
    s.thickness_um = tech_.metal_thickness_um;
    s.dc_current_a = current_a;
    s.temp_k = temp_k;
    return mttf_s(s);
  };
  double lo = 1e-3, hi = 1e-3;
  while (life(hi) < target_life_s && hi < 1e4) hi *= 2.0;
  RELSIM_REQUIRE(hi < 1e4, "no realizable width meets the EM lifetime target");
  if (life(lo) >= target_life_s) return lo;
  for (int i = 0; i < 60; ++i) {
    const double mid = 0.5 * (lo + hi);
    (life(mid) >= target_life_s ? hi : lo) = mid;
  }
  return hi;
}

}  // namespace relsim::aging
