// AgingEngine: ages a circuit over a mission profile.
//
// Flow (DESIGN.md Sec. 4):
//   1. run the stress workload (DC operating point by default, or a caller-
//      provided transient runner) with stress recording enabled;
//   2. summarize per-device stress;
//   3. advance every (device, model) state by one epoch;
//   4. write the combined drift into each MOSFET's degradation state;
//   5. repeat — with the *degraded* circuit, so stress feedback is captured
//      (e.g. NBTI lowering the effective overdrive reduces further stress).
//
// Wire (EM) lifetimes are evaluated once from the recorded currents; a wire
// whose sampled lifetime ends inside the mission window is reported as a
// failure (open interconnect) and its resistance is raised to model the
// void.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "aging/em.h"
#include "aging/model.h"
#include "spice/circuit.h"

namespace relsim::aging {

struct MissionProfile {
  double years = 10.0;
  double temp_k = 398.0;  ///< worst-case junction temperature (125 C)
  int epochs = 10;
  /// Fraction of calendar time the system is powered (a phone SoC is not a
  /// server). Scales every device's stress duty; the power-off relaxation
  /// of the recoverable NBTI component is conservatively ignored.
  double activity = 1.0;

  double seconds() const;
};

struct AgingOptions {
  MissionProfile mission;
  std::uint64_t seed = 0x5eed;
  /// Re-run the stress workload every epoch (captures operating-point
  /// feedback); when false the initial stress is reused (faster, and the
  /// ablation knob for bench_eq3_nbti).
  bool refresh_stress_each_epoch = true;
  /// Factor applied to a failed (void) wire's resistance.
  double em_open_resistance_factor = 1e6;
  /// When true, the circuit is electrically simulated AT the mission
  /// temperature (Circuit::set_temperature) so the stress extraction sees
  /// the hot operating point, not the room-temperature one.
  bool set_circuit_temperature = false;
};

/// Runs the circuit's representative workload so that stress accumulators
/// fill up. The default runner solves the DC operating point and records it
/// with weight 1.
using StressRunner = std::function<void(spice::Circuit&)>;

struct EpochRecord {
  double t_years = 0.0;
  std::map<std::string, ParameterDrift> device_drift;
};

struct WireFailure {
  std::string wire;
  double t_fail_years = 0.0;
};

struct AgingReport {
  std::vector<EpochRecord> epochs;
  std::vector<std::string> hard_breakdowns;  ///< devices that reached HBD
  std::vector<WireFailure> wire_failures;

  const EpochRecord& final_epoch() const;
  /// Drift of a device at end of mission (zero drift if unknown).
  ParameterDrift final_drift(const std::string& device) const;
};

class AgingEngine {
 public:
  AgingEngine() = default;

  /// Adds a degradation mechanism. The engine owns the model.
  void add_model(std::unique_ptr<AgingModel> model);

  /// Engine with NBTI + HCI + TDDB at default parameters.
  static AgingEngine standard();

  std::size_t model_count() const { return models_.size(); }

  /// Ages `circuit` in place (device degradation states are written) and
  /// returns the epoch-by-epoch report. `em` may be null to skip wire
  /// checks.
  AgingReport age(spice::Circuit& circuit, const AgingOptions& options,
                  const StressRunner& runner = {},
                  const EmModel* em = nullptr) const;

 private:
  std::vector<std::unique_ptr<AgingModel>> models_;
};

/// The default stress workload: solve the DC operating point and record it
/// into every MOSFET with weight 1 second.
void dc_stress_runner(spice::Circuit& circuit);

}  // namespace relsim::aging
