#include "aging/engine.h"

#include <algorithm>

#include "aging/hci.h"
#include "aging/nbti.h"
#include "aging/tddb.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "spice/analysis.h"
#include "util/error.h"
#include "util/units.h"

namespace relsim::aging {

double MissionProfile::seconds() const { return years * units::kSecondsPerYear; }

const EpochRecord& AgingReport::final_epoch() const {
  RELSIM_REQUIRE(!epochs.empty(), "aging report has no epochs");
  return epochs.back();
}

ParameterDrift AgingReport::final_drift(const std::string& device) const {
  if (epochs.empty()) return {};
  const auto& drift = epochs.back().device_drift;
  const auto it = drift.find(device);
  return it == drift.end() ? ParameterDrift{} : it->second;
}

void AgingEngine::add_model(std::unique_ptr<AgingModel> model) {
  RELSIM_REQUIRE(model != nullptr, "null aging model");
  models_.push_back(std::move(model));
}

AgingEngine AgingEngine::standard() {
  AgingEngine engine;
  engine.add_model(std::make_unique<NbtiModel>());
  engine.add_model(std::make_unique<HciModel>());
  engine.add_model(std::make_unique<TddbModel>());
  return engine;
}

void dc_stress_runner(spice::Circuit& circuit) {
  const spice::DcResult op = spice::dc_operating_point(circuit);
  for (spice::Mosfet* m : circuit.mosfets()) {
    m->record_stress_point(op.x(), 1.0);
  }
  for (spice::Resistor* r : circuit.wires()) {
    r->record_stress_point(op.x(), 1.0);
  }
}

AgingReport AgingEngine::age(spice::Circuit& circuit,
                             const AgingOptions& options,
                             const StressRunner& runner,
                             const EmModel* em) const {
  RELSIM_REQUIRE(options.mission.epochs > 0, "mission needs >= 1 epoch");
  RELSIM_REQUIRE(options.mission.years > 0.0, "mission must be non-empty");
  RELSIM_REQUIRE(
      options.mission.activity >= 0.0 && options.mission.activity <= 1.0,
      "mission activity must be in [0,1]");
  const StressRunner& run_workload =
      runner ? runner : StressRunner(dc_stress_runner);

  obs::init_trace_from_env();
  const obs::TraceSpan age_span("aging.age", "epochs",
                                static_cast<long long>(options.mission.epochs));
  static obs::Counter& c_epochs = obs::metrics().counter("aging.epochs");
  static obs::Counter& c_stress = obs::metrics().counter("aging.stress_refreshes");
  // One ΔVth-eval counter per mechanism; resolved once per age() call since
  // model names are only known at runtime.
  std::vector<obs::Counter*> model_evals;
  model_evals.reserve(models_.size());
  for (const auto& model : models_) {
    model_evals.push_back(&obs::metrics().counter(
        "aging." + std::string(model->name()) + ".dvth_evals"));
  }

  const std::vector<spice::Mosfet*> mosfets = circuit.mosfets();
  const std::vector<spice::Resistor*> wires = circuit.wires();

  if (options.set_circuit_temperature) {
    circuit.set_temperature(options.mission.temp_k);
  }

  auto gather_stress = [&]() {
    const obs::TraceSpan stress_span("aging.gather_stress");
    c_stress.inc();
    for (spice::Mosfet* m : mosfets) m->reset_stress();
    for (spice::Resistor* r : wires) r->reset_stress();
    run_workload(circuit);
    std::vector<DeviceStress> out;
    out.reserve(mosfets.size());
    for (spice::Mosfet* m : mosfets) {
      DeviceStress s = DeviceStress::from_mosfet(*m, options.mission.temp_k);
      s.duty *= options.mission.activity;
      out.push_back(s);
    }
    return out;
  };

  std::vector<DeviceStress> stress = gather_stress();

  // Per-(device, model) state, seeded deterministically per pair.
  std::vector<std::vector<std::unique_ptr<ModelState>>> states(mosfets.size());
  for (std::size_t d = 0; d < mosfets.size(); ++d) {
    states[d].reserve(models_.size());
    for (std::size_t m = 0; m < models_.size(); ++m) {
      Xoshiro256 rng(derive_seed(options.seed,
                                 {static_cast<std::uint64_t>(d),
                                  static_cast<std::uint64_t>(m)}));
      states[d].push_back(models_[m]->init_state(stress[d], rng));
    }
  }

  // EM: sample wire lifetimes from the initial (fresh) currents.
  AgingReport report;
  struct PendingWireFailure {
    spice::Resistor* wire;
    double t_fail_s;
  };
  std::vector<PendingWireFailure> wire_fates;
  if (em != nullptr) {
    for (std::size_t w = 0; w < wires.size(); ++w) {
      Xoshiro256 rng(derive_seed(options.seed, {0xE111ull, w}));
      const WireStress ws =
          WireStress::from_resistor(*wires[w], options.mission.temp_k);
      const double t_fail = em->sample_lifetime_s(ws, rng);
      if (t_fail < options.mission.seconds()) {
        wire_fates.push_back({wires[w], t_fail});
      }
    }
  }

  const double epoch_s =
      options.mission.seconds() / options.mission.epochs;
  std::vector<bool> reported_hbd(mosfets.size(), false);

  for (int epoch = 1; epoch <= options.mission.epochs; ++epoch) {
    const double t_now_s = epoch_s * epoch;
    const obs::TraceSpan epoch_span("aging.epoch", "epoch",
                                    static_cast<long long>(epoch));
    c_epochs.inc();

    EpochRecord record;
    record.t_years = t_now_s / units::kSecondsPerYear;
    for (std::size_t d = 0; d < mosfets.size(); ++d) {
      ParameterDrift total;
      for (std::size_t m = 0; m < models_.size(); ++m) {
        total.combine(models_[m]->advance(*states[d][m], stress[d], epoch_s));
        model_evals[m]->inc();
      }
      mosfets[d]->set_degradation(total.to_degradation());
      if (total.hard_breakdown && !reported_hbd[d]) {
        reported_hbd[d] = true;
        report.hard_breakdowns.push_back(mosfets[d]->name());
      }
      record.device_drift.emplace(mosfets[d]->name(), total);
    }

    // Apply EM opens whose failure time falls inside this epoch.
    for (auto& fate : wire_fates) {
      if (fate.wire != nullptr && fate.t_fail_s <= t_now_s) {
        fate.wire->set_resistance(fate.wire->resistance() *
                                  options.em_open_resistance_factor);
        report.wire_failures.push_back(
            {fate.wire->name(), fate.t_fail_s / units::kSecondsPerYear});
        fate.wire = nullptr;
      }
    }

    report.epochs.push_back(std::move(record));

    // Refresh the stress condition with the degraded circuit.
    if (options.refresh_stress_each_epoch &&
        epoch < options.mission.epochs) {
      stress = gather_stress();
    }
  }
  return report;
}

}  // namespace relsim::aging
