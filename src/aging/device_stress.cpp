#include "aging/device_stress.h"

#include <cmath>

#include "util/error.h"

namespace relsim::aging {

DeviceStress DeviceStress::from_mosfet(const spice::Mosfet& mosfet,
                                       double temp_k) {
  const auto& acc = mosfet.stress();
  RELSIM_REQUIRE(!acc.empty(),
                 "device '" + mosfet.name() +
                     "' has no recorded stress; run a stress workload or "
                     "record a DC point first");
  const auto& p = mosfet.params();
  DeviceStress s;
  s.is_pmos = p.is_pmos;
  s.w_um = p.w_um;
  s.l_um = p.l_um;
  s.tox_nm = p.tox_nm;
  s.vt0_abs = std::abs(p.vt0);
  s.vgs_on = acc.mean_on_abs_vgs();
  s.vds_on = acc.mean_on_abs_vds();
  s.vgs_max = acc.max_abs_vgs();
  s.duty = acc.duty();
  s.temp_k = temp_k;
  return s;
}

DeviceStress DeviceStress::dc(bool is_pmos, double vgs, double vds,
                              double tox_nm, double temp_k, double w_um,
                              double l_um, double vt0_abs) {
  DeviceStress s;
  s.is_pmos = is_pmos;
  s.w_um = w_um;
  s.l_um = l_um;
  s.tox_nm = tox_nm;
  s.vt0_abs = vt0_abs;
  s.vgs_on = std::abs(vgs);
  s.vds_on = std::abs(vds);
  s.vgs_max = std::abs(vgs);
  s.duty = 1.0;
  s.temp_k = temp_k;
  return s;
}

}  // namespace relsim::aging
