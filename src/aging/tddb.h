// Time Dependent Dielectric Breakdown — Sec. 3.1 of the paper.
//
// Implemented behaviour:
//  - time-to-breakdown is Weibull distributed [39]; the shape parameter
//    shrinks with oxide thickness (thin oxides have wide BD spreads) and
//    the scale accelerates exponentially with oxide field and temperature;
//  - weakest-link area scaling: eta ~ (A_ref/A)^(1/beta);
//  - breakdown-mode sequence depends on oxide thickness:
//      t_ox > 5 nm          : hard BD (HBD) directly,
//      2.5 nm < t_ox <= 5 nm: soft BD (SBD) preceding HBD [21],
//      t_ox <= 2.5 nm       : SBD -> progressive BD (PBD, slow gate-current
//                             growth) -> final HBD;
//  - post-BD device impact: extra gate leakage (uA range after SBD, mA range
//    after HBD at operating voltages) at a random spot (drain or source
//    side — the spot location matters for the channel current [14]), plus a
//    local mobility reduction that collapses the channel current [8]; the
//    immediate post-SBD effect on the transistor is small, the long-time
//    effect significant [21],[8];
//  - one BD does NOT necessarily imply circuit failure [20]: the model only
//    updates device parameters, the circuit decides.
#pragma once

#include "aging/model.h"

namespace relsim::aging {

struct TddbParams {
  double eta0_s = 1.0e21;          ///< scale prefactor (extrapolated to E=0)
  double gamma_nm_per_v = 36.0;    ///< field acceleration exponent
  double ea_ev = 0.6;              ///< thermal activation
  double temp_ref_k = 300.0;
  double beta_per_nm = 0.45;       ///< Weibull shape slope vs t_ox
  double beta_offset = 0.2;
  double area_ref_um2 = 1.0;       ///< reference gate area for eta0
  double sbd_gleak_s = 2e-6;       ///< gate leak right after SBD
  double hbd_gleak_s = 2e-3;       ///< gate leak after HBD (mA at ~1V)
  double sbd_mobility_collapse = 0.05;
  double hbd_mobility_collapse = 0.5;
  double sbd_tox_max_nm = 5.0;     ///< SBD exists below this thickness
  double pbd_tox_max_nm = 2.5;     ///< PBD exists below this thickness
  double hbd_delay_mean_frac = 1.0;  ///< mean extra life after SBD / t_sbd
  double pbd_tau_frac = 0.5;       ///< PBD progression timescale / t_sbd
  double pbd_exponent = 2.0;       ///< leak growth power during PBD
};

enum class BdMode { kNone, kSoft, kProgressive, kHard };

/// Sampled breakdown fate of one device.
struct BreakdownTimeline {
  double t_sbd_s = 0.0;  ///< first breakdown event (== t_hbd when no SBD)
  double t_hbd_s = 0.0;
  bool has_sbd_phase = false;
  bool has_pbd_phase = false;
  bool spot_near_drain = true;  ///< leak path location (gd vs gs)
};

class TddbModel final : public AgingModel {
 public:
  TddbModel() : TddbModel(TddbParams{}) {}
  explicit TddbModel(const TddbParams& params);

  std::string name() const override { return "TDDB"; }
  std::unique_ptr<ModelState> init_state(const DeviceStress& stress,
                                         Xoshiro256& rng) const override;
  ParameterDrift advance(ModelState& state, const DeviceStress& stress,
                         double dt_s) const override;

  const TddbParams& params() const { return params_; }

  // -- closed forms and sampling --------------------------------------------

  /// Weibull shape beta for an oxide of thickness `tox_nm`.
  double weibull_shape(double tox_nm) const;

  /// Weibull scale eta (63.2% life, seconds) for a stress condition,
  /// including field, temperature and area acceleration.
  double weibull_scale_s(const DeviceStress& stress) const;

  /// Samples the full breakdown fate of a device under `stress`.
  BreakdownTimeline sample_timeline(const DeviceStress& stress,
                                    Xoshiro256& rng) const;

  /// Breakdown mode the device is in at absolute time `t_s`.
  BdMode mode_at(const BreakdownTimeline& timeline, double t_s) const;

  /// Gate-leak conductance at time `t_s` (grows through PBD).
  double gate_leak_at(const BreakdownTimeline& timeline, double t_s) const;

  /// Full parameter drift at time `t_s`.
  ParameterDrift drift_at(const BreakdownTimeline& timeline, double t_s) const;

 private:
  TddbParams params_;
};

}  // namespace relsim::aging
