// DeviceStress: the electrical/thermal stress condition a degradation model
// consumes (Sec. 3 of the paper: "this degradation depends on the stress
// applied to the device, i.e. the voltages and currents applied").
#pragma once

#include "spice/mosfet.h"

namespace relsim::aging {

/// Stress condition of one MOSFET, averaged over its workload.
struct DeviceStress {
  bool is_pmos = false;
  double w_um = 1.0;
  double l_um = 0.1;
  double tox_nm = 2.0;
  double vt0_abs = 0.35;  ///< |nominal threshold|, V
  double vgs_on = 1.0;    ///< average |vgs| while the device is on, V
  double vds_on = 0.5;    ///< average |vds| while on, V (HCI driver)
  double vgs_max = 1.0;   ///< worst-case |vgs| (TDDB field driver), V
  double duty = 1.0;      ///< fraction of time under gate stress
  double temp_k = 300.0;

  /// Oxide field proxy used by the exp(E_ox/E_0) acceleration terms, V/nm.
  double eox_v_per_nm() const { return vgs_on / tox_nm; }
  /// Worst-case oxide field (TDDB), V/nm.
  double eox_max_v_per_nm() const { return vgs_max / tox_nm; }
  /// Gate-oxide area, um^2 (TDDB area scaling).
  double gate_area_um2() const { return w_um * l_um; }

  /// Builds the stress condition from a MOSFET's recorded stress
  /// accumulator (requires a non-empty accumulator) at ambient `temp_k`.
  static DeviceStress from_mosfet(const spice::Mosfet& mosfet, double temp_k);

  /// A DC stress condition (duty 1) at explicit voltages, for closed-form
  /// model evaluation in tests/benches.
  static DeviceStress dc(bool is_pmos, double vgs, double vds, double tox_nm,
                         double temp_k, double w_um = 1.0, double l_um = 0.1,
                         double vt0_abs = 0.35);
};

}  // namespace relsim::aging
