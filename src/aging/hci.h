// Hot Carrier Injection — Sec. 3.2, Eq. 2 of the paper (Wang et al. [45]):
//
//   dVT ~ Q_i * exp(E_ox/E_o) * exp(-phi_it / (q * lambda * E_m)) * t^n  (2)
//
// where Q_i is the inversion charge (~ overdrive), E_m the maximum lateral
// field near the drain, phi_it the trap generation energy and lambda the
// hot-electron mean free path [17],[42]. Characteristics implemented:
//  - nMOS degrades much more than pMOS (holes are "cooler") [17];
//  - strong superlinear dependence on V_DS through exp(-phi/(q lambda E_m));
//  - shorter channels degrade faster (E_m ~ (V_DS - V_DSAT)/(c*L));
//  - temperature dependence per [44] (worse at high T in deep submicron,
//    modelled with a negative apparent activation energy);
//  - reported width dependence [17],[44] as (W_ref/W)^w_exp;
//  - partial recovery on stress removal — negligible compared to NBTI
//    relaxation (interface traps sit at the drain junction only) [17];
//  - coupled mobility and output-conductance degradation [45],[22].
#pragma once

#include "aging/model.h"

namespace relsim::aging {

struct HciParams {
  double a_prefactor = 9000.0;    ///< overall scale (calibration constant)
  double e0_v_per_nm = 0.5;       ///< oxide-field acceleration E_o
  double phi_it_ev = 3.7;         ///< trap generation energy
  double lambda_um = 0.0072;      ///< hot-carrier mean free path (~7.2 nm)
  double hot_spot_frac = 0.15;    ///< E_m = (V_DS - V_DSAT)/(frac * L)
  /// Velocity-saturation floor on V_DSAT: near-threshold biases do not see
  /// the full V_DS as lateral field (the carriers saturate first), so the
  /// pinch-off voltage never drops below this value.
  double vdsat_min_v = 0.2;
  double n = 0.45;                ///< power-law exponent
  double temp_ea_ev = -0.1;       ///< apparent activation (negative: worse hot)
  double temp_ref_k = 300.0;
  double pmos_factor = 0.1;       ///< pMOS degradation relative to nMOS
  double w_ref_um = 1.0;
  double w_exponent = 0.3;        ///< (W_ref/W)^w_exp width dependence
  double recovery_frac = 0.1;     ///< annealable fraction after stress removal
  double relax_t0_s = 1e-3;
  double relax_decades = 10.0;
  double mobility_per_volt = 0.6; ///< beta_factor = 1 - m*dVT
  double lambda_per_volt = 3.0;   ///< lambda_factor = 1 + l*dVT (r_o loss)
};

class HciModel final : public AgingModel {
 public:
  HciModel() : HciModel(HciParams{}) {}
  explicit HciModel(const HciParams& params);

  std::string name() const override { return "HCI"; }
  std::unique_ptr<ModelState> init_state(const DeviceStress& stress,
                                         Xoshiro256& rng) const override;
  ParameterDrift advance(ModelState& state, const DeviceStress& stress,
                         double dt_s) const override;

  const HciParams& params() const { return params_; }

  // -- closed forms ---------------------------------------------------------

  /// Maximum lateral field for the stress condition, V/um (0 if the device
  /// is not in saturation — no hot carriers without a pinch-off region).
  double lateral_field_v_per_um(const DeviceStress& stress) const;

  /// The prefactor K in dVT = K * t_eff^n (t_eff = duty * t).
  double stress_prefactor(const DeviceStress& stress) const;

  /// Eq. 2: dVT after `t_s` seconds under `stress` (duty folded into the
  /// equivalent stress time).
  double delta_vt(const DeviceStress& stress, double t_s) const;

  /// Remaining dVT `t_relax_s` after stress removal (small log-t anneal).
  double relaxed_delta_vt(double dvt_end, double t_relax_s) const;

  /// Full drift (threshold + mobility + output conductance) from a shift.
  ParameterDrift drift_from_dvt(double dvt) const;

 private:
  HciParams params_;
};

}  // namespace relsim::aging
