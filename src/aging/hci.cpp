#include "aging/hci.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"
#include "util/units.h"

namespace relsim::aging {

namespace {
class PowerLawState : public ModelState {
 public:
  double dvt = 0.0;
};
}  // namespace

HciModel::HciModel(const HciParams& params) : params_(params) {
  RELSIM_REQUIRE(params.a_prefactor > 0.0, "HCI prefactor must be > 0");
  RELSIM_REQUIRE(params.n > 0.0 && params.n < 1.0,
                 "HCI exponent must be in (0,1)");
  RELSIM_REQUIRE(params.lambda_um > 0.0 && params.hot_spot_frac > 0.0,
                 "HCI field parameters must be positive");
  RELSIM_REQUIRE(params.pmos_factor >= 0.0 && params.pmos_factor <= 1.0,
                 "pMOS factor must be in [0,1]");
}

std::unique_ptr<ModelState> HciModel::init_state(const DeviceStress&,
                                                 Xoshiro256&) const {
  return std::make_unique<PowerLawState>();
}

double HciModel::lateral_field_v_per_um(const DeviceStress& stress) const {
  const double vdsat =
      std::max(stress.vgs_on - stress.vt0_abs, params_.vdsat_min_v);
  const double excess = stress.vds_on - vdsat;
  if (excess <= 0.0) return 0.0;  // no pinch-off region, no hot carriers
  return excess / (params_.hot_spot_frac * stress.l_um);
}

double HciModel::stress_prefactor(const DeviceStress& stress) const {
  const double em = lateral_field_v_per_um(stress);
  if (em <= 0.0) return 0.0;
  const double qi = std::max(stress.vgs_on - stress.vt0_abs, 0.0);
  if (qi <= 0.0) return 0.0;
  const double type_factor = stress.is_pmos ? params_.pmos_factor : 1.0;
  const double lucky_electron =
      std::exp(-params_.phi_it_ev / (params_.lambda_um * em));
  const double field = std::exp(stress.eox_v_per_nm() / params_.e0_v_per_nm);
  const double temp = std::exp(
      (params_.temp_ea_ev / units::kBoltzmannEv) *
      (1.0 / stress.temp_k - 1.0 / params_.temp_ref_k));
  const double width =
      std::pow(params_.w_ref_um / stress.w_um, params_.w_exponent);
  return params_.a_prefactor * type_factor * qi * field * lucky_electron *
         temp * width;
}

double HciModel::delta_vt(const DeviceStress& stress, double t_s) const {
  RELSIM_REQUIRE(t_s >= 0.0, "stress time must be non-negative");
  const double k = stress_prefactor(stress);
  const double t_eff = stress.duty * t_s;
  if (k <= 0.0 || t_eff <= 0.0) return 0.0;
  return k * std::pow(t_eff, params_.n);
}

double HciModel::relaxed_delta_vt(double dvt_end, double t_relax_s) const {
  RELSIM_REQUIRE(dvt_end >= 0.0 && t_relax_s >= 0.0,
                 "relaxation arguments must be non-negative");
  const double permanent = (1.0 - params_.recovery_frac) * dvt_end;
  const double annealable = params_.recovery_frac * dvt_end;
  const double decades = std::log10(1.0 + t_relax_s / params_.relax_t0_s);
  const double remaining =
      std::max(0.0, 1.0 - decades / params_.relax_decades);
  return permanent + annealable * remaining;
}

ParameterDrift HciModel::drift_from_dvt(double dvt) const {
  ParameterDrift d;
  d.dvt = dvt;
  d.beta_factor = std::max(0.5, 1.0 - params_.mobility_per_volt * dvt);
  d.lambda_factor = 1.0 + params_.lambda_per_volt * dvt;
  return d;
}

ParameterDrift HciModel::advance(ModelState& state, const DeviceStress& stress,
                                 double dt_s) const {
  RELSIM_REQUIRE(dt_s >= 0.0, "epoch duration must be non-negative");
  auto& s = static_cast<PowerLawState&>(state);
  const double k = stress_prefactor(stress);
  const double dt_eff = stress.duty * dt_s;
  if (k > 0.0 && dt_eff > 0.0) {
    // See NbtiModel::advance: guard the equivalent-time inversion against
    // overflow when the current stress is far weaker than the history.
    const double t_eq = std::pow(s.dvt / k, 1.0 / params_.n);
    const double aged = k * std::pow(t_eq + dt_eff, params_.n);
    if (std::isfinite(aged) && aged > s.dvt) s.dvt = aged;
  }
  return drift_from_dvt(s.dvt);
}

}  // namespace relsim::aging
