#include "aging/model.h"

namespace relsim::aging {

ParameterDrift& ParameterDrift::combine(const ParameterDrift& other) {
  dvt += other.dvt;
  beta_factor *= other.beta_factor;
  lambda_factor *= other.lambda_factor;
  g_leak_gs += other.g_leak_gs;
  g_leak_gd += other.g_leak_gd;
  hard_breakdown = hard_breakdown || other.hard_breakdown;
  return *this;
}

spice::MosDegradation ParameterDrift::to_degradation() const {
  spice::MosDegradation d;
  d.dvt = dvt;
  d.beta_factor = beta_factor;
  d.lambda_factor = lambda_factor;
  d.g_leak_gs = g_leak_gs;
  d.g_leak_gd = g_leak_gd;
  return d;
}

}  // namespace relsim::aging
