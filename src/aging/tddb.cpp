#include "aging/tddb.h"

#include <algorithm>
#include <cmath>

#include "rng/distributions.h"
#include "util/error.h"
#include "util/mathx.h"
#include "util/units.h"

namespace relsim::aging {

namespace {
class TddbState : public ModelState {
 public:
  explicit TddbState(BreakdownTimeline timeline) : timeline(timeline) {}
  BreakdownTimeline timeline;
  double elapsed_s = 0.0;
};
}  // namespace

TddbModel::TddbModel(const TddbParams& params) : params_(params) {
  RELSIM_REQUIRE(params.eta0_s > 0.0, "TDDB eta0 must be positive");
  RELSIM_REQUIRE(params.gamma_nm_per_v > 0.0, "TDDB gamma must be positive");
  RELSIM_REQUIRE(params.beta_per_nm > 0.0, "TDDB beta slope must be positive");
  RELSIM_REQUIRE(params.pbd_tox_max_nm <= params.sbd_tox_max_nm,
                 "PBD regime must be within the SBD regime");
  RELSIM_REQUIRE(params.pbd_exponent > 0.0 && params.pbd_tau_frac > 0.0,
                 "PBD progression parameters must be positive");
}

double TddbModel::weibull_shape(double tox_nm) const {
  RELSIM_REQUIRE(tox_nm > 0.0, "oxide thickness must be positive");
  return params_.beta_offset + params_.beta_per_nm * tox_nm;
}

double TddbModel::weibull_scale_s(const DeviceStress& stress) const {
  const double beta = weibull_shape(stress.tox_nm);
  const double field =
      std::exp(-params_.gamma_nm_per_v * stress.eox_max_v_per_nm());
  const double temp = std::exp(
      (params_.ea_ev / units::kBoltzmannEv) *
      (1.0 / stress.temp_k - 1.0 / params_.temp_ref_k));
  // Weakest link (Poisson area scaling): larger oxide area fails earlier.
  const double area =
      std::pow(params_.area_ref_um2 / stress.gate_area_um2(), 1.0 / beta);
  return params_.eta0_s * field * temp * area;
}

BreakdownTimeline TddbModel::sample_timeline(const DeviceStress& stress,
                                             Xoshiro256& rng) const {
  const WeibullDistribution tbd(weibull_shape(stress.tox_nm),
                                weibull_scale_s(stress));
  BreakdownTimeline tl;
  const double t_bd = tbd(rng);
  tl.spot_near_drain = rng.uniform01() < 0.5;
  tl.has_sbd_phase = stress.tox_nm <= params_.sbd_tox_max_nm;
  tl.has_pbd_phase = stress.tox_nm <= params_.pbd_tox_max_nm;
  if (!tl.has_sbd_phase) {
    tl.t_sbd_s = tl.t_hbd_s = t_bd;  // thick oxide: straight to HBD
    return tl;
  }
  tl.t_sbd_s = t_bd;
  if (tl.has_pbd_phase) {
    // HBD when the progressively growing leak reaches the HBD level.
    const double ratio = params_.hbd_gleak_s / params_.sbd_gleak_s;
    const double tau = params_.pbd_tau_frac * t_bd;
    tl.t_hbd_s =
        t_bd + tau * std::pow(ratio - 1.0, 1.0 / params_.pbd_exponent);
  } else {
    // Abrupt SBD -> HBD after an exponential extra life.
    const ExponentialDistribution extra(1.0 /
                                        (params_.hbd_delay_mean_frac * t_bd));
    tl.t_hbd_s = t_bd + extra(rng);
  }
  return tl;
}

BdMode TddbModel::mode_at(const BreakdownTimeline& tl, double t_s) const {
  if (t_s < tl.t_sbd_s) return BdMode::kNone;
  if (t_s >= tl.t_hbd_s) return BdMode::kHard;
  if (tl.has_pbd_phase) return BdMode::kProgressive;
  return tl.has_sbd_phase ? BdMode::kSoft : BdMode::kHard;
}

double TddbModel::gate_leak_at(const BreakdownTimeline& tl, double t_s) const {
  switch (mode_at(tl, t_s)) {
    case BdMode::kNone:
      return 0.0;
    case BdMode::kSoft:
      return params_.sbd_gleak_s;
    case BdMode::kProgressive: {
      const double tau = params_.pbd_tau_frac * tl.t_sbd_s;
      const double x = (t_s - tl.t_sbd_s) / tau;
      const double g = params_.sbd_gleak_s *
                       (1.0 + std::pow(x, params_.pbd_exponent));
      return std::min(g, params_.hbd_gleak_s);
    }
    case BdMode::kHard:
      return params_.hbd_gleak_s;
  }
  return 0.0;
}

ParameterDrift TddbModel::drift_at(const BreakdownTimeline& tl,
                                   double t_s) const {
  ParameterDrift d;
  const BdMode mode = mode_at(tl, t_s);
  if (mode == BdMode::kNone) return d;
  const double g = gate_leak_at(tl, t_s);
  (tl.spot_near_drain ? d.g_leak_gd : d.g_leak_gs) = g;
  // Local mobility collapse [8]: small right after SBD, grows with the
  // leak path through PBD, large after HBD.
  const double progress =
      (g - params_.sbd_gleak_s) /
      std::max(params_.hbd_gleak_s - params_.sbd_gleak_s, 1e-30);
  const double collapse =
      mode == BdMode::kHard
          ? params_.hbd_mobility_collapse
          : lerp(params_.sbd_mobility_collapse, params_.hbd_mobility_collapse,
                 std::clamp(progress, 0.0, 1.0));
  d.beta_factor = 1.0 - collapse;
  d.hard_breakdown = (mode == BdMode::kHard);
  return d;
}

std::unique_ptr<ModelState> TddbModel::init_state(const DeviceStress& stress,
                                                  Xoshiro256& rng) const {
  return std::make_unique<TddbState>(sample_timeline(stress, rng));
}

ParameterDrift TddbModel::advance(ModelState& state, const DeviceStress&,
                                  double dt_s) const {
  RELSIM_REQUIRE(dt_s >= 0.0, "epoch duration must be non-negative");
  auto& s = static_cast<TddbState&>(state);
  s.elapsed_s += dt_s;
  return drift_at(s.timeline, s.elapsed_s);
}

}  // namespace relsim::aging
