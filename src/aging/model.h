// AgingModel: the interface every transistor degradation mechanism
// implements (NBTI, HCI, TDDB).
//
// Models are *incremental*: the engine creates one ModelState per
// (device, model) pair and repeatedly advances it by an epoch of stress
// time. This matters because (a) TDDB is stochastic — the breakdown
// timeline is sampled once per device, and (b) power-law mechanisms must
// accumulate through *equivalent stress time* when the stress condition
// changes between epochs (the operating point drifts as the circuit ages).
#pragma once

#include <memory>
#include <string>

#include "aging/device_stress.h"
#include "rng/rng.h"

namespace relsim::aging {

/// Total drift of one device's parameters contributed by one or more
/// mechanisms. Zero/one values mean "fresh".
struct ParameterDrift {
  double dvt = 0.0;            ///< |VT| increase, V
  double beta_factor = 1.0;    ///< multiplies beta (mobility)
  double lambda_factor = 1.0;  ///< multiplies lambda (1/r_o)
  double g_leak_gs = 0.0;      ///< gate-source leakage, S
  double g_leak_gd = 0.0;      ///< gate-drain leakage, S
  bool hard_breakdown = false;

  /// Accumulates another mechanism's drift: shifts add, factors multiply,
  /// leakage conductances add (parallel paths), HBD latches.
  ParameterDrift& combine(const ParameterDrift& other);

  /// Converts to the simulator's degradation struct.
  spice::MosDegradation to_degradation() const;
};

/// Opaque per-(device, model) state.
class ModelState {
 public:
  virtual ~ModelState() = default;
};

class AgingModel {
 public:
  virtual ~AgingModel() = default;

  virtual std::string name() const = 0;

  /// Creates the per-device state. Stochastic models (TDDB) draw their
  /// sample here; deterministic models typically return an accumulator.
  virtual std::unique_ptr<ModelState> init_state(const DeviceStress& stress,
                                                 Xoshiro256& rng) const = 0;

  /// Advances the device by `dt_s` seconds under `stress` and returns the
  /// TOTAL drift this mechanism has accumulated so far (not the delta).
  virtual ParameterDrift advance(ModelState& state, const DeviceStress& stress,
                                 double dt_s) const = 0;
};

}  // namespace relsim::aging
