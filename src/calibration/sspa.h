// Switching-Sequence Post-Adjustment (SSPA) calibration — Sec. 5.1 / [9].
//
// The technique of Chen & Gielen: after fabrication, measure each unary MSB
// current source with a simple on-chip current comparator, then choose the
// order in which the sources are switched on so that the accumulated error
// stays near zero across the whole transfer curve. Random errors are
// "partially cancelled out" at runtime, so the sources can be drawn at a
// fraction of the intrinsic-accuracy area (the paper reports ~6% of the
// analog area of an intrinsic 14-bit design, INL < 0.5 LSB, with a current
// comparator as the only extra analog block).
#pragma once

#include <vector>

#include "calibration/dac.h"
#include "rng/rng.h"
#include "variability/pelgrom.h"

namespace relsim::calibration {

/// Greedy SSPA sequence: at every step switch on the remaining source that
/// keeps |cumulative error| minimal. `measured_errors` are the comparator
/// readings of each unary source's relative error.
std::vector<int> sspa_sequence(const std::vector<double>& measured_errors);

/// The as-drawn (natural) sequence 0,1,2,...
std::vector<int> natural_sequence(int n);

/// Simulates the comparator measurement: true error + N(0, sigma_meas).
std::vector<double> measure_unary_errors(const CurrentSteeringDac& dac,
                                         double sigma_meas_rel,
                                         Xoshiro256& rng);

/// Applies the full SSPA flow (measure -> sort -> install) to a DAC.
/// Returns the installed sequence.
std::vector<int> calibrate_sspa(CurrentSteeringDac& dac,
                                double sigma_meas_rel, Xoshiro256& rng);

// ---------------------------------------------------------------------------
// Intrinsic-accuracy sizing and the area comparison (Fig. 5 numbers)

/// Unit-cell relative sigma that an UNCALIBRATED segmented DAC needs for
/// INL <= `inl_target_lsb` at `z_sigma` confidence (random-walk model over
/// the unary sources: sigma_INL ~ sigma_unit * sqrt(2^N) / 2).
double required_unit_sigma_intrinsic(int total_bits, double inl_target_lsb,
                                     double z_sigma);

/// Pelgrom area of one unit current cell (um^2) for a target relative
/// current sigma: WL = (A_beta / sigma)^2 with A_beta in %*um (single-device
/// convention, so the pair constant divided by sqrt(2)).
double unit_cell_area_um2(const PelgromModel& pelgrom, double sigma_rel);

struct AreaComparison {
  double sigma_intrinsic = 0.0;   ///< unit sigma the intrinsic design needs
  double sigma_calibrated = 0.0;  ///< unit sigma SSPA tolerates
  double area_intrinsic_mm2 = 0.0;
  double area_calibrated_mm2 = 0.0;
  double comparator_overhead_mm2 = 0.0;

  double area_ratio() const {
    return (area_calibrated_mm2 + comparator_overhead_mm2) /
           area_intrinsic_mm2;
  }
};

/// Computes the analog-area comparison for a DAC architecture: the total
/// current-cell area of the intrinsic design vs the SSPA-calibrated design,
/// plus a fixed comparator overhead. The calibrated design relaxes only the
/// unary section to `sigma_calibrated`; its binary section stays at
/// `sigma_binary` (typically the intrinsic sigma — SSPA does not cover it).
/// Mirrors the Fig. 5 claim structure.
AreaComparison compare_analog_area(const DacConfig& config,
                                   const PelgromModel& pelgrom,
                                   double sigma_intrinsic,
                                   double sigma_calibrated,
                                   double sigma_binary,
                                   double comparator_overhead_mm2 = 0.002);

}  // namespace relsim::calibration
