#include "calibration/sspa.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "rng/distributions.h"
#include "util/error.h"

namespace relsim::calibration {

namespace {

// Maximum deviation of the cumulative error from the endpoint line — the
// INL-relevant figure of merit of a switching sequence.
double max_line_deviation(const std::vector<int>& sequence,
                          const std::vector<double>& errors, double mean) {
  double cum = 0.0;
  double worst = 0.0;
  for (std::size_t k = 0; k < sequence.size(); ++k) {
    cum += errors[static_cast<std::size_t>(sequence[k])];
    worst = std::max(worst,
                     std::abs(cum - mean * static_cast<double>(k + 1)));
  }
  return worst;
}

}  // namespace

std::vector<int> sspa_sequence(const std::vector<double>& measured_errors) {
  RELSIM_REQUIRE(!measured_errors.empty(), "no sources to sequence");
  const std::size_t n = measured_errors.size();
  // INL is endpoint-corrected, and the cumulative error after all sources
  // is order-invariant (the sum), so the quantity the sequence can shape is
  // the *deviation from the straight line to the endpoint*.
  double mean = 0.0;
  for (double e : measured_errors) mean += e;
  mean /= static_cast<double>(n);

  // Stage 1 — greedy: at each step switch on the source that keeps
  // |cumulative - k*mean| minimal.
  std::vector<bool> used(n, false);
  std::vector<int> sequence;
  sequence.reserve(n);
  double cumulative = 0.0;
  for (std::size_t step = 0; step < n; ++step) {
    const double target = mean * static_cast<double>(step + 1);
    std::size_t best = n;
    double best_abs = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (used[i]) continue;
      const double cand = std::abs(cumulative + measured_errors[i] - target);
      if (best == n || cand < best_abs) {
        best = i;
        best_abs = cand;
      }
    }
    used[best] = true;
    cumulative += measured_errors[best];
    sequence.push_back(static_cast<int>(best));
  }

  // Stage 2 — pairwise-swap refinement: the greedy consumes the
  // well-matched sources early and leaves large same-magnitude errors for
  // the tail of the walk; swapping positions fixes that cheaply. First
  // improving swap per scan, until a full scan finds none.
  double best_dev = max_line_deviation(sequence, measured_errors, mean);
  for (int pass = 0; pass < 200; ++pass) {
    bool improved = false;
    for (std::size_t i = 0; i + 1 < n && !improved; ++i) {
      for (std::size_t j = i + 1; j < n && !improved; ++j) {
        std::swap(sequence[i], sequence[j]);
        const double dev = max_line_deviation(sequence, measured_errors, mean);
        if (dev < best_dev) {
          best_dev = dev;
          improved = true;
        } else {
          std::swap(sequence[i], sequence[j]);
        }
      }
    }
    if (!improved) break;
  }
  return sequence;
}

std::vector<int> natural_sequence(int n) {
  RELSIM_REQUIRE(n > 0, "sequence length must be positive");
  std::vector<int> seq(static_cast<std::size_t>(n));
  std::iota(seq.begin(), seq.end(), 0);
  return seq;
}

std::vector<double> measure_unary_errors(const CurrentSteeringDac& dac,
                                         double sigma_meas_rel,
                                         Xoshiro256& rng) {
  RELSIM_REQUIRE(sigma_meas_rel >= 0.0,
                 "measurement noise must be non-negative");
  const NormalDistribution noise(0.0, sigma_meas_rel);
  std::vector<double> measured;
  measured.reserve(dac.unary_errors().size());
  for (double e : dac.unary_errors()) {
    measured.push_back(e + noise(rng));
  }
  return measured;
}

std::vector<int> calibrate_sspa(CurrentSteeringDac& dac,
                                double sigma_meas_rel, Xoshiro256& rng) {
  std::vector<int> seq =
      sspa_sequence(measure_unary_errors(dac, sigma_meas_rel, rng));
  dac.set_switching_sequence(seq);
  return seq;
}

double required_unit_sigma_intrinsic(int total_bits, double inl_target_lsb,
                                     double z_sigma) {
  RELSIM_REQUIRE(total_bits >= 2, "total_bits too small");
  RELSIM_REQUIRE(inl_target_lsb > 0.0 && z_sigma > 0.0,
                 "INL target and confidence must be positive");
  // Random-walk INL of a unit-cell DAC: worst-case sigma at midscale is
  // sigma_unit * sqrt(2^N)/2 (in LSB). Require z_sigma * that <= target.
  return 2.0 * inl_target_lsb /
         (z_sigma * std::sqrt(std::pow(2.0, total_bits)));
}

double unit_cell_area_um2(const PelgromModel& pelgrom, double sigma_rel) {
  RELSIM_REQUIRE(sigma_rel > 0.0, "sigma must be positive");
  // sigma_single(beta) = (A_beta/sqrt 2) / sqrt(WL)  =>  WL = (A/(sqrt2 s))^2
  const double a_beta = pelgrom.params().abeta_pct_um * 1e-2;  // -> relative
  const double wl = std::pow(a_beta / (std::sqrt(2.0) * sigma_rel), 2.0);
  return wl;
}

AreaComparison compare_analog_area(const DacConfig& config,
                                   const PelgromModel& pelgrom,
                                   double sigma_intrinsic,
                                   double sigma_calibrated,
                                   double sigma_binary,
                                   double comparator_overhead_mm2) {
  AreaComparison cmp;
  cmp.sigma_intrinsic = sigma_intrinsic;
  cmp.sigma_calibrated = sigma_calibrated;
  cmp.comparator_overhead_mm2 = comparator_overhead_mm2;
  const double unary_units =
      static_cast<double>(config.unary_sources()) * config.units_per_unary();
  const double binary_units = std::pow(2.0, config.binary_bits()) - 1.0;
  const double um2_to_mm2 = 1e-6;
  cmp.area_intrinsic_mm2 = (unary_units + binary_units) *
                           unit_cell_area_um2(pelgrom, sigma_intrinsic) *
                           um2_to_mm2;
  cmp.area_calibrated_mm2 =
      (unary_units * unit_cell_area_um2(pelgrom, sigma_calibrated) +
       binary_units * unit_cell_area_um2(pelgrom, sigma_binary)) *
      um2_to_mm2;
  return cmp;
}

}  // namespace relsim::calibration
