#include "calibration/dac.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "rng/distributions.h"
#include "util/error.h"

namespace relsim::calibration {

CurrentSteeringDac::CurrentSteeringDac(const DacConfig& config,
                                       Xoshiro256& rng)
    : config_(config) {
  RELSIM_REQUIRE(config.total_bits >= 2 && config.total_bits <= 20,
                 "total_bits out of supported range");
  RELSIM_REQUIRE(config.unary_bits >= 1 &&
                     config.unary_bits < config.total_bits,
                 "unary_bits must be in [1, total_bits)");
  RELSIM_REQUIRE(config.lsb_current_a > 0.0, "LSB current must be positive");
  RELSIM_REQUIRE(config.sigma_unit_rel >= 0.0, "sigma must be non-negative");

  // Unary sources: units_per_unary units -> sigma_unit/sqrt(units).
  const NormalDistribution unary_dist(
      0.0, config.sigma_unit_rel /
               std::sqrt(static_cast<double>(config.units_per_unary())));
  unary_err_.resize(static_cast<std::size_t>(config.unary_sources()));
  for (double& e : unary_err_) e = unary_dist(rng);

  // Binary source b is built from 2^b units (of the LSB-section quality).
  binary_err_.resize(static_cast<std::size_t>(config.binary_bits()));
  for (int b = 0; b < config.binary_bits(); ++b) {
    const NormalDistribution dist(
        0.0, config.binary_sigma() / std::sqrt(std::pow(2.0, b)));
    binary_err_[static_cast<std::size_t>(b)] = dist(rng);
  }

  sequence_.resize(unary_err_.size());
  std::iota(sequence_.begin(), sequence_.end(), 0);
  rebuild_tables();
}

void CurrentSteeringDac::set_switching_sequence(std::vector<int> sequence) {
  RELSIM_REQUIRE(sequence.size() == unary_err_.size(),
                 "sequence size mismatch");
  std::vector<bool> seen(sequence.size(), false);
  for (int idx : sequence) {
    RELSIM_REQUIRE(idx >= 0 && static_cast<std::size_t>(idx) < seen.size() &&
                       !seen[static_cast<std::size_t>(idx)],
                   "sequence must be a permutation of the unary sources");
    seen[static_cast<std::size_t>(idx)] = true;
  }
  sequence_ = std::move(sequence);
  rebuild_tables();
}

void CurrentSteeringDac::rebuild_tables() {
  const double unary_weight =
      config_.lsb_current_a * config_.units_per_unary();
  unary_prefix_.assign(unary_err_.size() + 1, 0.0);
  for (std::size_t k = 0; k < sequence_.size(); ++k) {
    const double i =
        unary_weight * (1.0 + unary_err_[static_cast<std::size_t>(
                                  sequence_[k])]);
    unary_prefix_[k + 1] = unary_prefix_[k] + i;
  }
  const int bb = config_.binary_bits();
  binary_value_.assign(static_cast<std::size_t>(1) << bb, 0.0);
  for (int low = 0; low < (1 << bb); ++low) {
    double acc = 0.0;
    for (int b = 0; b < bb; ++b) {
      if ((low >> b) & 1) {
        acc += config_.lsb_current_a * std::pow(2.0, b) *
               (1.0 + binary_err_[static_cast<std::size_t>(b)]);
      }
    }
    binary_value_[static_cast<std::size_t>(low)] = acc;
  }
}

double CurrentSteeringDac::output(int code) const {
  RELSIM_REQUIRE(code >= 0 && code < config_.levels(), "code out of range");
  const int high = code >> config_.binary_bits();
  const int low = code & ((1 << config_.binary_bits()) - 1);
  return unary_prefix_[static_cast<std::size_t>(high)] +
         binary_value_[static_cast<std::size_t>(low)];
}

std::vector<double> CurrentSteeringDac::transfer_curve() const {
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(config_.levels()));
  for (int code = 0; code < config_.levels(); ++code) {
    out.push_back(output(code));
  }
  return out;
}

std::vector<double> CurrentSteeringDac::inl_lsb() const {
  const std::vector<double> curve = transfer_curve();
  const double lsb_actual =
      (curve.back() - curve.front()) / (config_.levels() - 1);
  std::vector<double> inl(curve.size());
  for (std::size_t code = 0; code < curve.size(); ++code) {
    const double ideal =
        curve.front() + lsb_actual * static_cast<double>(code);
    inl[code] = (curve[code] - ideal) / lsb_actual;
  }
  return inl;
}

DacLinearity CurrentSteeringDac::linearity() const {
  const std::vector<double> curve = transfer_curve();
  const double lsb_actual =
      (curve.back() - curve.front()) / (config_.levels() - 1);
  DacLinearity lin;
  for (std::size_t code = 0; code < curve.size(); ++code) {
    const double ideal =
        curve.front() + lsb_actual * static_cast<double>(code);
    lin.inl_max_abs =
        std::max(lin.inl_max_abs, std::abs((curve[code] - ideal) / lsb_actual));
    if (code > 0) {
      const double dnl =
          (curve[code] - curve[code - 1]) / lsb_actual - 1.0;
      lin.dnl_max_abs = std::max(lin.dnl_max_abs, std::abs(dnl));
    }
  }
  return lin;
}

}  // namespace relsim::calibration
