// Behavioural segmented current-steering DAC — the vehicle of Sec. 5.1 /
// Fig. 5 of the paper ([9]: a 14-bit 200-MHz current-steering DAC whose
// unary MSB sources are calibrated by Switching-Sequence Post-Adjustment).
//
// Architecture: `unary_bits` thermometer-coded MSBs (2^u - 1 sources of
// weight 2^(N-u) LSB each) on top of an (N-u)-bit binary LSB section.
// Every current source carries a relative mismatch error sampled from the
// Pelgrom statistics of its layout; the switching sequence of the unary
// sources is programmable — that is the knob SSPA turns.
#pragma once

#include <cstdint>
#include <vector>

#include "rng/rng.h"

namespace relsim::calibration {

struct DacConfig {
  int total_bits = 14;
  int unary_bits = 6;          ///< thermometer MSB segment width
  double lsb_current_a = 1e-6;
  /// Relative (1-sigma) mismatch of ONE UNIT current cell of the unary MSB
  /// array; a source made of k units has relative sigma
  /// sigma_unit_rel / sqrt(k).
  double sigma_unit_rel = 2e-3;
  /// Unit-cell sigma of the binary LSB section. The LSB section is only
  /// ~1.6% of the array and is NOT covered by SSPA, so real designs keep it
  /// intrinsically sized while relaxing the unary cells; negative means
  /// "same as sigma_unit_rel".
  double sigma_unit_binary_rel = -1.0;

  double binary_sigma() const {
    return sigma_unit_binary_rel < 0.0 ? sigma_unit_rel
                                       : sigma_unit_binary_rel;
  }

  int levels() const { return 1 << total_bits; }
  int unary_sources() const { return (1 << unary_bits) - 1; }
  int binary_bits() const { return total_bits - unary_bits; }
  /// Units per unary source.
  int units_per_unary() const { return 1 << binary_bits(); }
};

/// Static nonlinearity summary (endpoint-fit convention, in LSB).
struct DacLinearity {
  double inl_max_abs = 0.0;
  double dnl_max_abs = 0.0;
};

class CurrentSteeringDac {
 public:
  /// Samples all source errors with `rng`.
  CurrentSteeringDac(const DacConfig& config, Xoshiro256& rng);

  const DacConfig& config() const { return config_; }

  /// Analog output (amps) for an input code in [0, levels).
  double output(int code) const;

  /// Per-source relative errors of the unary segment (size unary_sources).
  const std::vector<double>& unary_errors() const { return unary_err_; }

  /// Active switching sequence: unary source index turned on k-th.
  const std::vector<int>& switching_sequence() const { return sequence_; }

  /// Installs a new switching sequence (must be a permutation).
  void set_switching_sequence(std::vector<int> sequence);

  /// Full transfer curve (levels() samples). Amps.
  std::vector<double> transfer_curve() const;

  /// INL per code in LSB, endpoint-corrected.
  std::vector<double> inl_lsb() const;

  /// Worst-case INL/DNL in LSB.
  DacLinearity linearity() const;

 private:
  DacConfig config_;
  std::vector<double> unary_err_;     ///< relative error per unary source
  std::vector<double> binary_err_;    ///< relative error per binary source
  std::vector<int> sequence_;
  std::vector<double> unary_prefix_;  ///< cumulative current along sequence
  std::vector<double> binary_value_;  ///< current of each binary sub-code

  void rebuild_tables();
};

}  // namespace relsim::calibration
