#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/error.h"

namespace relsim {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  RELSIM_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void TablePrinter::set_precision(int digits) {
  RELSIM_REQUIRE(digits >= 1 && digits <= 17, "precision out of range");
  precision_ = digits;
}

void TablePrinter::add_row(std::vector<Cell> cells) {
  RELSIM_REQUIRE(cells.size() == headers_.size(),
                 "row width does not match header count");
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::format_cell(const Cell& cell) const {
  if (const auto* s = std::get_if<std::string>(&cell)) return *s;
  if (const auto* i = std::get_if<long long>(&cell)) return std::to_string(*i);
  std::ostringstream os;
  os << std::setprecision(precision_) << std::get<double>(cell);
  return os.str();
}

void TablePrinter::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  std::vector<std::vector<std::string>> formatted;
  formatted.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      cells.push_back(format_cell(row[c]));
      widths[c] = std::max(widths[c], cells.back().size());
    }
    formatted.push_back(std::move(cells));
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "" : "  ") << std::setw(static_cast<int>(widths[c]))
         << cells[c];
    }
    os << '\n';
  };
  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c)
    total += widths[c] + (c == 0 ? 0 : 2);
  os << std::string(total, '-') << '\n';
  for (const auto& cells : formatted) print_row(cells);
}

void TablePrinter::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c)
      os << (c == 0 ? "" : ",") << cells[c];
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (const auto& cell : row) cells.push_back(format_cell(cell));
    emit(cells);
  }
}

void print_banner(std::ostream& os, const std::string& title) {
  os << "\n== " << title << " ==\n";
}

}  // namespace relsim
