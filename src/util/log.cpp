#include "util/log.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace relsim {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};

// The mutex and sink are function-local statics so the logger keeps
// working from static constructors/destructors in any TU order. They are
// heap-allocated and never destroyed: worker threads or atexit hooks may
// log after main() returns.
std::mutex& log_mutex() {
  static std::mutex* mu = new std::mutex();
  return *mu;
}

LogSink& sink_slot() {
  static LogSink* sink = new LogSink();
  return *sink;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void set_log_sink(LogSink sink) {
  std::lock_guard<std::mutex> lock(log_mutex());
  sink_slot() = std::move(sink);
}

namespace detail {
void log_line(LogLevel level, const std::string& message) {
  std::lock_guard<std::mutex> lock(log_mutex());
  const LogSink& sink = sink_slot();
  if (sink) {
    sink(level, message);
    return;
  }
  std::fprintf(stderr, "[relsim %s] %s\n", level_name(level), message.c_str());
}
}  // namespace detail

}  // namespace relsim
