#include "util/error.h"

#include <sstream>

namespace relsim::detail {

void throw_requirement_failure(const char* condition, const char* file,
                               int line, const std::string& message) {
  std::ostringstream os;
  os << "requirement failed: " << condition << " (" << file << ":" << line
     << "): " << message;
  throw Error(os.str());
}

}  // namespace relsim::detail
