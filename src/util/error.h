// Error types and precondition checking for relsim.
//
// All library errors are reported as exceptions derived from relsim::Error.
// Use RELSIM_REQUIRE for precondition checks on public API boundaries; it
// throws relsim::Error with the failed condition and a caller-supplied
// message, so misuse is diagnosed instead of producing garbage results.
#pragma once

#include <stdexcept>
#include <string>

namespace relsim {

/// Base class for all errors thrown by relsim.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when an iterative algorithm (Newton, transient, MLE fit, ...)
/// fails to converge within its iteration budget.
class ConvergenceError : public Error {
 public:
  explicit ConvergenceError(const std::string& what) : Error(what) {}
};

/// Thrown when a matrix is singular (or numerically singular) during
/// factorization or solve.
class SingularMatrixError : public Error {
 public:
  explicit SingularMatrixError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void throw_requirement_failure(const char* condition,
                                            const char* file, int line,
                                            const std::string& message);
}  // namespace detail

}  // namespace relsim

/// Precondition check: throws relsim::Error when `cond` is false.
#define RELSIM_REQUIRE(cond, message)                                        \
  do {                                                                       \
    if (!(cond)) {                                                           \
      ::relsim::detail::throw_requirement_failure(#cond, __FILE__, __LINE__, \
                                                  (message));                \
    }                                                                        \
  } while (false)
