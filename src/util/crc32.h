// CRC-32 (IEEE 802.3 polynomial, reflected) for artifact integrity checks.
//
// Monte-Carlo checkpoints are binary files that live across process kills;
// a truncated or bit-flipped file must be DETECTED, never parsed as valid
// sample data (variability/mc_session.cpp). The checksum is table-driven,
// dependency-free, and byte-order independent (it hashes the serialized
// byte stream, not in-memory structs).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace relsim {

/// Incremental CRC-32: feed `crc32_update` with successive byte ranges
/// starting from `kCrc32Init`, then finalize with `crc32_final`.
inline constexpr std::uint32_t kCrc32Init = 0xFFFFFFFFu;

std::uint32_t crc32_update(std::uint32_t state, const void* data,
                           std::size_t size);

inline std::uint32_t crc32_final(std::uint32_t state) { return ~state; }

/// One-shot CRC-32 of a byte range.
std::uint32_t crc32(const void* data, std::size_t size);

inline std::uint32_t crc32(std::string_view bytes) {
  return crc32(bytes.data(), bytes.size());
}

}  // namespace relsim
