// Minimal leveled logger.
//
// relsim is a library first: logging defaults to warnings-and-above on
// stderr and can be silenced or made verbose by the embedding application.
// Thread-safe: the global level is atomic and emission is serialized by a
// mutex, so concurrent workers (McSession, parallel benches) never
// interleave lines. The output sink is injectable (set_log_sink) so tests
// and embedders can capture or reroute everything the library says.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace relsim {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global minimum level that will be emitted (atomic).
void set_log_level(LogLevel level);
LogLevel log_level();

/// Receives every emitted line (already level-filtered, without the
/// "[relsim LEVEL]" prefix). Called under the logger mutex: invocations
/// are serialized, and the sink must not log reentrantly.
using LogSink = std::function<void(LogLevel, const std::string&)>;

/// Replaces the output sink; an empty sink restores the stderr default.
void set_log_sink(LogSink sink);

namespace detail {
void log_line(LogLevel level, const std::string& message);
}

template <typename... Args>
void log(LogLevel level, const Args&... args) {
  if (level < log_level()) return;
  std::ostringstream os;
  (os << ... << args);
  detail::log_line(level, os.str());
}

template <typename... Args>
void log_debug(const Args&... args) {
  log(LogLevel::kDebug, args...);
}
template <typename... Args>
void log_info(const Args&... args) {
  log(LogLevel::kInfo, args...);
}
template <typename... Args>
void log_warn(const Args&... args) {
  log(LogLevel::kWarn, args...);
}
template <typename... Args>
void log_error(const Args&... args) {
  log(LogLevel::kError, args...);
}

}  // namespace relsim
