#include "util/mathx.h"

#include <algorithm>

#include "util/error.h"

namespace relsim {

bool approx_equal(double a, double b, double rtol, double atol) {
  return std::abs(a - b) <= atol + rtol * std::max(std::abs(a), std::abs(b));
}

std::vector<double> linspace(double lo, double hi, int n) {
  RELSIM_REQUIRE(n >= 1, "linspace needs at least one point");
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(n));
  if (n == 1) {
    out.push_back(lo);
    return out;
  }
  const double step = (hi - lo) / (n - 1);
  for (int i = 0; i < n; ++i) out.push_back(lo + step * i);
  out.back() = hi;  // avoid accumulated round-off at the end point
  return out;
}

std::vector<double> logspace(double lo, double hi, int n) {
  RELSIM_REQUIRE(lo > 0.0 && hi > 0.0, "logspace endpoints must be positive");
  std::vector<double> out = linspace(std::log(lo), std::log(hi), n);
  for (double& v : out) v = std::exp(v);
  if (!out.empty()) out.back() = hi;
  return out;
}

double softplus(double x, double s) {
  RELSIM_REQUIRE(s > 0.0, "softplus smoothness must be positive");
  const double z = x / s;
  if (z > 40.0) return x;               // exp(z) overflows; softplus(x) == x
  if (z < -40.0) return s * std::exp(z);  // underflow-safe tail
  return s * std::log1p(std::exp(z));
}

double softplus_deriv(double x, double s) {
  const double z = x / s;
  if (z > 40.0) return 1.0;
  if (z < -40.0) return std::exp(z);
  return 1.0 / (1.0 + std::exp(-z));
}

double interp1(const std::vector<double>& xs, const std::vector<double>& ys,
               double x) {
  RELSIM_REQUIRE(xs.size() == ys.size() && !xs.empty(),
                 "interp1 needs equally sized, non-empty tables");
  if (x <= xs.front()) return ys.front();
  if (x >= xs.back()) return ys.back();
  const auto it = std::upper_bound(xs.begin(), xs.end(), x);
  const std::size_t hi = static_cast<std::size_t>(it - xs.begin());
  const std::size_t lo = hi - 1;
  const double t = (x - xs[lo]) / (xs[hi] - xs[lo]);
  return lerp(ys[lo], ys[hi], t);
}

}  // namespace relsim
