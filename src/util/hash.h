// FNV-1a 64-bit content hashing.
//
// The service layer keys its compiled-circuit cache by netlist CONTENT,
// not by client-supplied names: two tenants submitting the same topology
// must share one compile, and a one-character edit must miss. FNV-1a is
// dependency-free, stable across platforms/runs (unlike std::hash), and
// good enough for a cache keyed by kilobyte-sized text — collisions are
// astronomically unlikely at daemon scale and at worst cost a wrong cache
// hit on adversarial input, which the cache guards by storing the full
// key text alongside the hash.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace relsim {

inline constexpr std::uint64_t kFnv1a64Init = 0xCBF29CE484222325ull;

constexpr std::uint64_t fnv1a64_update(std::uint64_t state,
                                       std::string_view bytes) {
  for (const char c : bytes) {
    state ^= static_cast<std::uint8_t>(c);
    state *= 0x00000100000001B3ull;
  }
  return state;
}

/// One-shot FNV-1a 64 of a byte string.
constexpr std::uint64_t fnv1a64(std::string_view bytes) {
  return fnv1a64_update(kFnv1a64Init, bytes);
}

}  // namespace relsim
