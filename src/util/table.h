// Aligned-table printer used by the benchmark harnesses.
//
// Every bench binary regenerates one of the paper's figures/tables as an
// aligned text table plus (optionally) a CSV block that downstream plotting
// can consume. TablePrinter collects rows as strings/doubles and renders
// them right-aligned with a fixed precision per column.
#pragma once

#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace relsim {

class TablePrinter {
 public:
  using Cell = std::variant<std::string, double, long long>;

  /// Creates a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Sets the number of significant digits used for double cells (default 5).
  void set_precision(int digits);

  /// Appends one row; the number of cells must match the header count.
  void add_row(std::vector<Cell> cells);

  /// Renders the table, right-aligned, with a header underline.
  void print(std::ostream& os) const;

  /// Renders the same data as CSV (no alignment padding).
  void print_csv(std::ostream& os) const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::string format_cell(const Cell& cell) const;

  std::vector<std::string> headers_;
  std::vector<std::vector<Cell>> rows_;
  int precision_ = 5;
};

/// Prints a section banner ("== title ==") used by benches to separate the
/// reproduced figures.
void print_banner(std::ostream& os, const std::string& title);

}  // namespace relsim
