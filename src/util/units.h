// Physical constants and unit helpers.
//
// relsim uses SI units internally (volts, amperes, seconds, kelvin, metres)
// except where EDA convention is overwhelmingly different and noted at the
// API: device W/L are in micrometres, oxide thickness in nanometres, current
// density in A/cm^2, and the Pelgrom constant A_VT in mV*um.
#pragma once

namespace relsim::units {

/// Boltzmann constant in eV/K (convenient for exp(-Ea/kT) activation terms).
inline constexpr double kBoltzmannEv = 8.617333262e-5;

/// Boltzmann constant in J/K.
inline constexpr double kBoltzmannJ = 1.380649e-23;

/// Elementary charge in coulombs.
inline constexpr double kElementaryCharge = 1.602176634e-19;

/// Vacuum permittivity in F/m.
inline constexpr double kEpsilon0 = 8.8541878128e-12;

/// Relative permittivity of SiO2.
inline constexpr double kEpsilonSiO2 = 3.9;

/// Thermal voltage kT/q at temperature `temp_k`, in volts.
inline constexpr double thermal_voltage(double temp_k) {
  return kBoltzmannEv * temp_k;
}

/// Gate-oxide capacitance per unit area for an SiO2 dielectric of thickness
/// `tox_nm` nanometres, in F/m^2.
inline constexpr double cox_per_area(double tox_nm) {
  return kEpsilon0 * kEpsilonSiO2 / (tox_nm * 1e-9);
}

/// Room temperature in kelvin (the default stress temperature baseline).
inline constexpr double kRoomTempK = 300.0;

inline constexpr double kSecondsPerYear = 365.25 * 24.0 * 3600.0;

inline constexpr double um_to_m(double um) { return um * 1e-6; }
inline constexpr double nm_to_m(double nm) { return nm * 1e-9; }
inline constexpr double m_to_um(double m) { return m * 1e6; }

}  // namespace relsim::units
