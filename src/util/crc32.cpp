#include "util/crc32.h"

#include <array>

namespace relsim {

namespace {

/// Reflected CRC-32 table for polynomial 0xEDB88320, built once.
std::array<std::uint32_t, 256> build_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32_update(std::uint32_t state, const void* data,
                           std::size_t size) {
  static const std::array<std::uint32_t, 256> table = build_table();
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    state = table[(state ^ bytes[i]) & 0xFFu] ^ (state >> 8);
  }
  return state;
}

std::uint32_t crc32(const void* data, std::size_t size) {
  return crc32_final(crc32_update(kCrc32Init, data, size));
}

}  // namespace relsim
