// Small numeric helpers shared across modules.
#pragma once

#include <cmath>
#include <vector>

namespace relsim {

/// True when |a-b| <= atol + rtol*max(|a|,|b|).
bool approx_equal(double a, double b, double rtol = 1e-9, double atol = 1e-12);

/// `n` evenly spaced points from `lo` to `hi` inclusive. n>=2 required
/// (n==1 returns {lo}).
std::vector<double> linspace(double lo, double hi, int n);

/// `n` logarithmically spaced points from `lo` to `hi` inclusive; lo,hi > 0.
std::vector<double> logspace(double lo, double hi, int n);

/// Linear interpolation between `a` and `b` at parameter `t` in [0,1].
inline double lerp(double a, double b, double t) { return a + (b - a) * t; }

/// Numerically safe softplus: smooth max(x, 0) with smoothness `s`.
/// softplus(x, s) = s*ln(1 + exp(x/s)); monotone, >0, -> x for x >> s.
double softplus(double x, double s);

/// Derivative of softplus with respect to x (the logistic function).
double softplus_deriv(double x, double s);

/// Piecewise-linear interpolation through (xs, ys); xs strictly increasing.
/// Clamps outside the table range.
double interp1(const std::vector<double>& xs, const std::vector<double>& ys,
               double x);

/// Sign of x as -1.0, 0.0 or +1.0.
inline double sign(double x) { return (x > 0.0) - (x < 0.0); }

}  // namespace relsim
